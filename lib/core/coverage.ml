module Engine = Rader_runtime.Engine
module Tool = Rader_runtime.Tool
module Steal_spec = Rader_runtime.Steal_spec
module Obs = Rader_obs.Obs

type profile = {
  k : int;
  d : int;
  n_spawns : int;
  k_rel : int;
  rel_depths : int list;
}

(* Count continuations per sync block and spawn depth with a tiny tool:
   each spawned-child return in a frame is one continuation; sync resets
   the frame's count. Contained: if the program crashes mid-profile, the
   maxima observed over the completed prefix are returned together with
   the diagnostic.

   The same pass computes the program's *relevance profile* for spec
   pruning. A steal at continuation position [i] of a sync block can only
   perturb the analysis if some instrumented event — a cell access, a
   reducer-read, or a view-aware auxiliary frame — executes in the block's
   dynamic extent at or after that position: only then can the fresh
   region acquire a view, run a reduce, shift strand numbering, or change
   any access's region. So on every such event we walk the active frame
   stack and record, per frame, the largest continuation count at which an
   event was observed in the frame's current sync block; a block whose
   count never reaches 1 cannot be perturbed by any steal. [k_rel] is the
   maximum over all blocks (0 = no steal anywhere matters) and
   [rel_depths] the sorted depths of frames owning at least one
   perturbable block — the two coordinates {!spec_relevant} checks. *)
let profile_with_failure program =
  let max_k = ref 0 in
  let max_d = ref 0 in
  let conts = Hashtbl.create 64 in (* frame -> conts in current block *)
  let depth = Hashtbl.create 64 in
  let rel = Hashtbl.create 64 in (* frame -> max marked conts, current block *)
  let stack = ref [] in (* active frames, innermost first *)
  let max_k_rel = ref 0 in
  let rel_depth_set = Hashtbl.create 8 in
  let saw_reducer = ref false in
  let mark () =
    List.iter
      (fun fid ->
        match Hashtbl.find_opt conts fid with
        | Some c when c >= 1 -> (
            match Hashtbl.find_opt rel fid with
            | Some r when r >= c -> ()
            | _ -> Hashtbl.replace rel fid c)
        | _ -> ())
      !stack
  in
  (* The frame's current sync block is over: fold its marked maximum into
     the global relevance coordinates. *)
  let fold_block fid =
    (match Hashtbl.find_opt rel fid with
    | Some r when r >= 1 ->
        if r > !max_k_rel then max_k_rel := r;
        (match Hashtbl.find_opt depth fid with
        | Some d -> Hashtbl.replace rel_depth_set d ()
        | None -> ())
    | _ -> ());
    Hashtbl.remove rel fid
  in
  let tool =
    Tool.extern
    {
      Tool.hooks_null with
      Tool.on_frame_enter =
        (fun ~frame ~parent ~spawned:_ ~kind ->
          if kind <> Tool.User_fn then begin
            saw_reducer := true;
            mark ()
          end;
          let d =
            if parent < 0 then 0
            else
              (* an unexpected parent (e.g. after a contained crash left a
                 gap in the enter/return pairing) profiles as depth 0
                 rather than raising Not_found mid-profile *)
              match Hashtbl.find_opt depth parent with
              | Some pd -> pd + 1
              | None -> 0
          in
          Hashtbl.replace depth frame d;
          if d > !max_d then max_d := d;
          Hashtbl.replace conts frame 0;
          stack := frame :: !stack);
      on_frame_return =
        (fun ~frame ~parent ~spawned ~kind:_ ->
          fold_block frame;
          (match !stack with f :: rest when f = frame -> stack := rest | _ -> ());
          Hashtbl.remove conts frame;
          Hashtbl.remove depth frame;
          if spawned && parent >= 0 then begin
            let c =
              (match Hashtbl.find_opt conts parent with Some c -> c | None -> 0)
              + 1
            in
            Hashtbl.replace conts parent c;
            if c > !max_k then max_k := c
          end);
      on_sync =
        (fun ~frame ->
          fold_block frame;
          Hashtbl.replace conts frame 0);
      on_read = (fun ~frame:_ ~loc:_ ~view_aware:_ -> mark ());
      on_write = (fun ~frame:_ ~loc:_ ~view_aware:_ -> mark ());
      on_reducer_read =
        (fun ~frame:_ ~reducer:_ ->
          saw_reducer := true;
          mark ());
    }
  in
  let eng = Engine.create ~tool () in
  let failure =
    match Engine.run_result eng program with Ok _ -> None | Error f -> Some f
  in
  let stats = Engine.stats eng in
  (* A program that performs no reducer operation at all — ostensibly
     deterministic control flow is spec-invariant, so it never will under
     any spec either — has no view-aware accesses anywhere: every steal is
     verdict-neutral regardless of plain accesses in its extent, and the
     whole family beyond [Steal_spec.none] is redundant. *)
  let k_rel, rel_depths =
    if not !saw_reducer then (0, [])
    else
      ( !max_k_rel,
        List.sort compare
          (Hashtbl.fold (fun d () acc -> d :: acc) rel_depth_set []) )
  in
  ( { k = !max_k; d = !max_d; n_spawns = stats.Engine.n_spawns; k_rel; rel_depths },
    failure )

let profile program = fst (profile_with_failure program)

(* A spec is *irrelevant* when every steal it could possibly perform lands
   strictly after the last instrumented event of its sync block: the stolen
   region then never materializes a view, every region merge is a no-op
   (no Reduce/Identity frames, no strand-numbering change), and every
   access keeps the region and SP relation it has under [Steal_spec.none]
   — so the replay's verdict is byte-identical to the no-steal replay that
   always runs first. Dropping such specs cannot change [racy_locs] or
   [reports]. Shapes that cannot be localized ([Always], [Probabilistic],
   [Spawn_indices], [Opaque]) are conservatively kept. *)
let spec_relevant prof (s : Steal_spec.t) =
  match s.Steal_spec.shape with
  | Steal_spec.Local_indices idxs -> List.exists (fun i -> i <= prof.k_rel) idxs
  | Steal_spec.At_depth dd -> List.mem dd prof.rel_depths
  | Steal_spec.Never | Steal_spec.Always | Steal_spec.Probabilistic
  | Steal_spec.Spawn_indices _ | Steal_spec.Opaque ->
      true

let prune_specs prof specs = List.filter (spec_relevant prof) specs

let specs_for_updates ~k ~d =
  let by_position =
    List.init k (fun i ->
        Steal_spec.at_local_indices ~policy:Steal_spec.Reduce_eagerly [ i + 1 ])
  in
  let by_depth = List.init (d + 1) (fun dd -> Steal_spec.at_depth dd) in
  by_position @ by_depth

let specs_for_reductions ~k =
  let specs = ref [] in
  let push s = specs := s :: !specs in
  for a = 1 to k do
    (* single steal: elicits ⟨0..a⟩ ⊗ ⟨a..end⟩ *)
    push (Steal_spec.at_local_indices ~policy:Steal_spec.Reduce_at_sync [ a ]);
    for b = a + 1 to k do
      (* right fold: elicits ⟨a..b⟩ ⊗ ⟨b..end⟩ then ⟨0..a⟩ ⊗ rest;
         left (eager) fold: elicits ⟨0..a⟩ ⊗ ⟨a..b⟩ then rest ⊗ ⟨b..end⟩ *)
      push (Steal_spec.at_local_indices ~policy:Steal_spec.Reduce_at_sync [ a; b ]);
      push (Steal_spec.at_local_indices ~policy:Steal_spec.Reduce_eagerly [ a; b ]);
      for c = b + 1 to k do
        (* middle pair first: elicits ⟨a..b⟩ ⊗ ⟨b..c⟩ (Theorem 7) *)
        push
          (Steal_spec.with_name
             (Steal_spec.at_local_indices
                ~policy:(Steal_spec.Reduce_schedule (fun ord -> if ord = 3 then 1 else 0))
                [ a; b; c ])
             (Printf.sprintf "triple(%d,%d,%d)" a b c))
      done
    done
  done;
  List.rev !specs

let all_specs ~k ~d =
  (Steal_spec.none :: specs_for_updates ~k ~d) @ specs_for_reductions ~k

(* ---------- symbolic no-steal scan ----------

   SP+ under [Steal_spec.none] degenerates to a closed form: no steal ever
   fires, so every access carries view id 0 and the detector's check
   collapses to "recorded access parallel with the current one, and the
   current one view-oblivious" (the view-aware branch compares equal view
   ids and never fires). Its shadow keeps a recorded access unless it is
   serial with the current strand, so by transitivity of SP precedence the
   retained entry is parallel to the current access whenever any dropped
   one was — per location, the single-slot shadow misses nothing. The
   no-steal verdict is therefore computable from the recorded trace alone:

     racy(none)(loc) ⟺ ∃ accesses x before y at loc, strands parallel
                        (parse-tree Lemma 4), at least one a write, and
                        y view-oblivious.

   When additionally x is view-oblivious, both endpoints are plain user
   code: they execute, at the same location, under *every* steal spec
   (steals never perturb view-oblivious strands of an ostensibly
   deterministic program), stay parallel (the SP relation of user strands
   is program-determined), and the later-endpoint-oblivious check fires
   regardless of view ids — the location races on every spec of the
   family. That is the strongest verdict the analyzer can issue (lint
   R006) and the basis for skipping the no-steal replay entirely when the
   scan proves it clean. *)

type certificate =
  | No_parallel_pair  (** no two accesses are ever logically parallel *)
  | Parallel_reads_only  (** parallel accesses exist but none writes *)
  | Va_suppressed
      (** a parallel pair with a write exists, but every such pair's later
          endpoint is view-aware: clean without steals; only the residual
          replays can decide the stolen schedules *)

type loc_scan = {
  ls_loc : int;
  ls_first : Rader_runtime.Engine.access;  (** witness pair, serial order *)
  ls_second : Rader_runtime.Engine.access;
  ls_always : bool;
      (** both witness endpoints view-oblivious: racy under every spec *)
}

type scan = {
  scan_racy : loc_scan list;  (** ascending location *)
  scan_clean : (int * certificate) list;  (** ascending location *)
  scan_truncated : bool;
      (** some location blew the pair budget: its verdict (and every
          skip decision resting on scan completeness) is void *)
}

let scan_trace ?(max_pairs = 100_000) (trace : Trace.t) =
  let ix = Rader_dag.Sp_tree.index (Trace.sp_tree trace) in
  let by_loc = Hashtbl.create 64 in
  List.iter
    (fun (a : Engine.access) ->
      let prev =
        try Hashtbl.find by_loc a.Engine.a_loc with Not_found -> []
      in
      Hashtbl.replace by_loc a.Engine.a_loc (a :: prev))
    trace.Trace.accesses;
  let locs =
    List.sort compare
      (Hashtbl.fold (fun l accs acc -> (l, List.rev accs) :: acc) by_loc [])
  in
  let truncated = ref false in
  let racy = ref [] in
  let clean = ref [] in
  List.iter
    (fun (loc, accs) ->
      let budget = ref max_pairs in
      let any_parallel = ref false in
      let suppressed = ref false in
      let first_racy = ref None in
      let first_always = ref None in
      (try
         let rec outer = function
           | [] -> ()
           | (x : Engine.access) :: rest ->
               let rec inner = function
                 | [] -> outer rest
                 | (y : Engine.access) :: more ->
                     if !budget <= 0 then begin
                       truncated := true;
                       raise Exit
                     end;
                     decr budget;
                     if
                       x.Engine.a_strand <> y.Engine.a_strand
                       && Rader_dag.Sp_tree.parallel ix x.Engine.a_strand
                            y.Engine.a_strand
                     then begin
                       any_parallel := true;
                       if x.Engine.a_is_write || y.Engine.a_is_write then
                         if not y.Engine.a_view_aware then begin
                           if !first_racy = None then first_racy := Some (x, y);
                           if not x.Engine.a_view_aware then begin
                             first_always := Some (x, y);
                             raise Exit (* strongest verdict: stop *)
                           end
                         end
                         else suppressed := true
                     end;
                     inner more
               in
               inner rest
         in
         outer accs
       with Exit -> ());
      match (!first_always, !first_racy) with
      | Some (x, y), _ ->
          racy :=
            { ls_loc = loc; ls_first = x; ls_second = y; ls_always = true }
            :: !racy
      | None, Some (x, y) ->
          racy :=
            { ls_loc = loc; ls_first = x; ls_second = y; ls_always = false }
            :: !racy
      | None, None ->
          let cert =
            if !suppressed then Va_suppressed
            else if !any_parallel then Parallel_reads_only
            else No_parallel_pair
          in
          clean := (loc, cert) :: !clean)
    locs;
  {
    scan_racy = List.rev !racy;
    scan_clean = List.rev !clean;
    scan_truncated = !truncated;
  }

let symbolic_scan ?max_pairs program =
  let eng = Engine.create ~record:true () in
  match Engine.run_result eng program with
  | Error f -> Error f
  | Ok _ -> Ok (scan_trace ?max_pairs (Trace.of_engine eng))

type span = {
  span_spec : string;
  span_worker : int;
  span_t0_us : float;
  span_t1_us : float;
}

type obs_summary = {
  obs_counters : Obs.counters;
  obs_spans : span list;
  obs_phases : (string * float) list;
}

type result = {
  prof : profile;
  n_specs : int;
  n_pruned : int;
  n_skipped : int;
  sym : scan option;
  n_run : int;
  racy_locs : int list;
  reports : Report.t list;
  per_spec : (Steal_spec.t * int list) list;
  incomplete : (string * Diag.failure) list;
  complete : bool;
  obs : obs_summary option;
}

let take n xs =
  let rec go n acc = function
    | x :: rest when n > 0 -> go (n - 1) (x :: acc) rest
    | rest -> (List.rev acc, rest)
  in
  go n [] xs

(* What one spec replay produced. [Not_run] = the sweep-wide deadline
   expired before the spec was dispatched. *)
type spec_outcome =
  | Ran of {
      locs : int list;
      races : Report.t list;
      failure : Diag.failure option;
      (* observability (with_obs only): this replay's deterministic
         counter delta, plus wall-clock span coordinates for the trace *)
      counters : Obs.counters option;
      worker : int;
      t0_us : float;
      t1_us : float;
    }
  | Not_run

let exhaustive_check ?max_specs ?max_events ?deadline ?(jobs = 1)
    ?(with_obs = false) ?(prune = false) ?(symbolic = false) ?max_pairs ?reach
    program =
  let abs_deadline = Option.map (fun s -> Unix.gettimeofday () +. s) deadline in
  let past_deadline () =
    match abs_deadline with
    | Some dl -> Unix.gettimeofday () > dl
    | None -> false
  in
  let obs_was = Obs.enabled () in
  if with_obs then Obs.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.set_enabled obs_was) @@ fun () ->
  let phase_profile = Obs.phase "profile" in
  let phase_replay = Obs.phase "replay" in
  let phase_merge = Obs.phase "merge" in
  let prof_snap = if with_obs then Some (Obs.snapshot ()) else None in
  let prof, prof_failure =
    Obs.timed phase_profile (fun () -> profile_with_failure program)
  in
  let prof_counters = Option.map Obs.since prof_snap in
  let specs = all_specs ~k:prof.k ~d:prof.d in
  let n_specs = List.length specs in
  (* The symbolic fast path needs one extra recorded no-steal run; like
     pruning it is sound only against a complete profile, and a crashing
     program voids it too (fall back to the enumerated sweep). *)
  let sym =
    if symbolic && prof_failure = None then
      match
        Obs.timed phase_profile (fun () -> symbolic_scan ?max_pairs program)
      with
      | Ok s -> Some s
      | Error _ -> None
    else None
  in
  (* Pruning is sound only against a complete relevance profile: if the
     profiling run crashed, keep the whole family. *)
  let specs, n_pruned, n_skipped =
    match sym with
    | Some s ->
        (* Symbolic selection: every spec outside the residual set is
           provably verdict-identical to [Steal_spec.none] (the relevance
           lemma), and [none] itself is needed only when the scan found —
           or, truncated, could have missed — a no-steal race. *)
        let keep (sp : Steal_spec.t) =
          match sp.Steal_spec.shape with
          | Steal_spec.Never -> s.scan_racy <> [] || s.scan_truncated
          | _ -> spec_relevant prof sp
        in
        let kept = List.filter keep specs in
        (kept, 0, n_specs - List.length kept)
    | None ->
        if prune && prof_failure = None then begin
          let kept = prune_specs prof specs in
          (kept, n_specs - List.length kept, 0)
        end
        else (specs, 0, 0)
  in
  let specs, dropped =
    match max_specs with
    | Some m when m < n_specs -> take m specs
    | _ -> (specs, [])
  in
  let specs = Array.of_list specs in
  (* Fan the replays out across domains. Each worker owns one engine +
     detector pair and recycles it per spec (Engine.reset / Sp_plus.reset)
     instead of reallocating; each replay's verdicts are returned as a
     self-contained outcome, so workers never share mutable state. Under
     [with_obs] each replay also carries its own counter delta — replays
     are deterministic, so the deltas (and their spec-order sum) are
     independent of which worker ran them. *)
  let outcomes, _ =
    Obs.timed phase_replay (fun () ->
        Parallel_sweep.map ~jobs ~stop:past_deadline
          ~init:(fun wid ->
            let eng = Engine.create () in
            let det = Sp_plus.attach ?reach eng in
            (wid, eng, det))
          ~task:(fun (wid, eng, det) i ->
            (* Re-check the sweep deadline at dispatch: a spec handed out
               in the window between the queue's [stop] poll and the task
               starting (jobs >= 2) is charged to the deadline exactly
               like the serial sweep charges it, instead of racing a
               doomed replay whose events would skew the obs summary. *)
            if past_deadline () then Not_run
            else begin
            Engine.reset ~spec:specs.(i) ?max_events ?deadline:abs_deadline eng;
            Sp_plus.reset det;
            let t0_us = if with_obs then Obs.now_us () else 0.0 in
            let snap = if with_obs then Some (Obs.snapshot ()) else None in
            let failure =
              match Engine.run_result eng program with
              | Ok _ -> None
              | Error f -> Some f
            in
            (* the detector's verdicts over the completed prefix still count *)
            Ran
              {
                locs = Sp_plus.racy_locs det;
                races = Sp_plus.races det;
                failure;
                counters = Option.map Obs.since snap;
                worker = wid;
                t0_us;
                t1_us = (if with_obs then Obs.now_us () else 0.0);
              }
            end)
          ~skipped:(fun _ -> Not_run)
          (Array.length specs))
  in
  (* Merge in spec order: the fold below is exactly the loop body of the
     serial sweep, so the result — report order, dedup decisions,
     [incomplete] order — is identical no matter how many domains ran. *)
  let seen = Hashtbl.create 32 in
  let reports = ref [] in
  let per_spec = ref [] in
  let incomplete =
    ref (match prof_failure with Some f -> [ ("profile", f) ] | None -> [])
  in
  let n_run = ref 0 in
  let merged = Option.map Obs.copy prof_counters in
  let spans = ref [] in
  Obs.timed phase_merge (fun () ->
      Array.iteri
        (fun i outcome ->
          let spec = specs.(i) in
          match outcome with
          | Not_run ->
              (* out of time: charge the remaining specs to the deadline without
                 running them, so the caller sees exactly what was not covered *)
              incomplete :=
                ( spec.Steal_spec.name,
                  Diag.Budget_exceeded (Diag.Deadline (Option.get abs_deadline)) )
                :: !incomplete
          | Ran { locs; races; failure; counters; worker; t0_us; t1_us } ->
              incr n_run;
              (match failure with
              | None -> ()
              | Some f -> incomplete := (spec.Steal_spec.name, f) :: !incomplete);
              (match (merged, counters) with
              | Some into, Some c ->
                  Obs.add ~into c;
                  spans :=
                    {
                      span_spec = spec.Steal_spec.name;
                      span_worker = worker;
                      span_t0_us = t0_us;
                      span_t1_us = t1_us;
                    }
                    :: !spans
              | _ -> ());
              per_spec := (spec, locs) :: !per_spec;
              List.iter
                (fun r ->
                  if not (Hashtbl.mem seen r.Report.subject) then begin
                    Hashtbl.replace seen r.Report.subject ();
                    reports := r :: !reports
                  end)
                races)
        outcomes);
  let m = Option.value max_specs ~default:0 in
  List.iter
    (fun (spec : Steal_spec.t) ->
      incomplete :=
        (spec.Steal_spec.name, Diag.Budget_exceeded (Diag.Max_specs m))
        :: !incomplete)
    dropped;
  let incomplete = List.rev !incomplete in
  let obs =
    Option.map
      (fun obs_counters ->
        {
          obs_counters;
          obs_spans = List.rev !spans;
          obs_phases =
            List.map
              (fun p -> (Obs.phase_name p, Obs.phase_seconds p))
              [ phase_profile; phase_replay; phase_merge ];
        })
      merged
  in
  {
    prof;
    n_specs;
    n_pruned;
    n_skipped;
    sym;
    n_run = !n_run;
    racy_locs = List.sort_uniq compare (Hashtbl.fold (fun k () acc -> k :: acc) seen []);
    reports = List.rev !reports;
    per_spec = List.rev !per_spec;
    incomplete;
    complete = incomplete = [];
    obs;
  }

let witness_spec res loc =
  List.find_map
    (fun (spec, locs) -> if List.mem loc locs then Some spec else None)
    res.per_spec
