open Rader_runtime

type stmt =
  | Spawn of stmt list
  | Call of stmt list
  | Pfor of int * stmt list
  | Sync
  | Read of int
  | Write of int
  | Update of int
  | Get_reducer of int
  | Set_reducer of int

type reducer_cfg = { update_touches : int option; reduce_touches : int option }

type program = { body : stmt list; n_cells : int; reducers : reducer_cfg array }

let monoid_for cfg (cells : int Cell.t array) : int Cell.t Reducer.monoid =
  {
    Reducer.name = "gen-add";
    identity = (fun c -> Cell.make_in c ~label:"gen.view" 0);
    reduce =
      (fun c l r ->
        (match cfg.reduce_touches with
        | Some j -> Cell.write c cells.(j) 1
        | None -> ());
        let rv = Cell.read c r in
        Cell.write c l (Cell.read c l + rv);
        l);
  }

let interpret p ctx =
  let cells =
    Array.init p.n_cells (fun i ->
        Cell.make_in ctx ~label:(Printf.sprintf "cell%d" i) 0)
  in
  let reducers =
    Array.map
      (fun cfg ->
        ( cfg,
          Reducer.create ctx (monoid_for cfg cells)
            ~init:(Cell.make_in ctx ~label:"gen.view0" 0) ))
      p.reducers
  in
  let do_update ctx idx =
    let cfg, red = reducers.(idx) in
    Reducer.update ctx red (fun c v ->
        (match cfg.update_touches with
        | Some j -> Cell.write c cells.(j) 1
        | None -> ());
        Cell.write c v (Cell.read c v + 1);
        v)
  in
  let rec exec_block ctx stmts = List.iter (exec_stmt ctx) stmts
  and exec_stmt ctx = function
    | Spawn b -> ignore (Cilk.spawn ctx (fun ctx -> exec_block ctx b))
    | Call b -> Cilk.call ctx (fun ctx -> exec_block ctx b)
    | Pfor (n, b) -> Cilk.parallel_for ctx ~lo:0 ~hi:n (fun ctx _ -> exec_block ctx b)
    | Sync -> Cilk.sync ctx
    | Read i -> ignore (Cell.read ctx cells.(i))
    | Write i -> Cell.write ctx cells.(i) (i + 1)
    | Update r -> do_update ctx r
    | Get_reducer r ->
        let _, red = reducers.(r) in
        ignore (Cell.read ctx (Reducer.get_value ctx red))
    | Set_reducer r ->
        let _, red = reducers.(r) in
        Reducer.set_value ctx red (Cell.make_in ctx ~label:"gen.reset" 0)
  in
  exec_block ctx p.body;
  Cilk.sync ctx;
  let total = ref 0 in
  Array.iter
    (fun (_, red) -> total := !total + Cell.read ctx (Reducer.get_value ctx red))
    reducers;
  Array.iteri (fun i c -> total := !total + ((i + 13) * Cell.read ctx c)) cells;
  !total

let gen ~with_reducers ~racy =
  let open QCheck2.Gen in
  let n_cells = 4 in
  let n_reducers = if with_reducers then 2 else 0 in
  let cell = int_bound (n_cells - 1) in
  let reducer = int_bound (max 0 (n_reducers - 1)) in
  let rec block ~depth fuel =
    if fuel <= 0 then return []
    else
      let* len = int_range 1 (min 6 fuel) in
      let* stmts = flatten_l (List.init len (fun _ -> stmt ~depth (fuel / len))) in
      return stmts
  and stmt ~depth fuel =
    let leafs =
      [
        (4, map (fun i -> Read i) cell);
        (4, map (fun i -> Write i) cell);
        (2, return Sync);
      ]
      @ (if with_reducers then [ (4, map (fun r -> Update r) reducer) ] else [])
      @
      if with_reducers && racy then
        [
          (1, map (fun r -> Get_reducer r) reducer);
          (1, map (fun r -> Set_reducer r) reducer);
        ]
      else []
    in
    let nodes =
      if depth <= 0 || fuel <= 1 then []
      else
        [
          (4, map (fun b -> Spawn b) (block ~depth:(depth - 1) (fuel - 1)));
          (2, map (fun b -> Call b) (block ~depth:(depth - 1) (fuel - 1)));
          ( 1,
            let* n = int_range 2 4 in
            let* b = block ~depth:(depth - 1) (max 1 (fuel / n)) in
            return (Pfor (n, b)) );
        ]
    in
    frequency (leafs @ nodes)
  in
  let reducer_cfg =
    if racy then
      let* u = option (int_bound (n_cells - 1)) in
      let* r = option (int_bound (n_cells - 1)) in
      return { update_touches = u; reduce_touches = r }
    else return { update_touches = None; reduce_touches = None }
  in
  let* body = block ~depth:3 25 in
  let* reducers = array_repeat n_reducers reducer_cfg in
  return { body; n_cells; reducers }

let print p =
  let buf = Buffer.create 256 in
  let rec go indent stmts =
    List.iter
      (fun s ->
        Buffer.add_string buf indent;
        match s with
        | Spawn b ->
            Buffer.add_string buf "spawn {\n";
            go (indent ^ "  ") b;
            Buffer.add_string buf (indent ^ "}\n")
        | Call b ->
            Buffer.add_string buf "call {\n";
            go (indent ^ "  ") b;
            Buffer.add_string buf (indent ^ "}\n")
        | Pfor (n, b) ->
            Buffer.add_string buf (Printf.sprintf "pfor %d {\n" n);
            go (indent ^ "  ") b;
            Buffer.add_string buf (indent ^ "}\n")
        | Sync -> Buffer.add_string buf "sync\n"
        | Read i -> Buffer.add_string buf (Printf.sprintf "read c%d\n" i)
        | Write i -> Buffer.add_string buf (Printf.sprintf "write c%d\n" i)
        | Update r -> Buffer.add_string buf (Printf.sprintf "update r%d\n" r)
        | Get_reducer r -> Buffer.add_string buf (Printf.sprintf "get r%d\n" r)
        | Set_reducer r -> Buffer.add_string buf (Printf.sprintf "set r%d\n" r))
      stmts
  in
  go "" p.body;
  Array.iteri
    (fun i cfg ->
      Buffer.add_string buf
        (Printf.sprintf "r%d: update->%s reduce->%s\n" i
           (match cfg.update_touches with Some j -> "c" ^ string_of_int j | None -> "-")
           (match cfg.reduce_touches with Some j -> "c" ^ string_of_int j | None -> "-")))
    p.reducers;
  Buffer.contents buf

let max_local_spawns p =
  let best = ref 0 in
  let rec go stmts =
    let count = ref 0 in
    List.iter
      (fun s ->
        match s with
        | Spawn b ->
            incr count;
            if !count > !best then best := !count;
            go b
        | Call b -> go b
        | Pfor (n, b) ->
            (* parallel_for compiles to a spawn chain of ~n-1 spawns in
               helper frames *)
            if n - 1 > !best then best := n - 1;
            go b
        | Sync -> count := 0
        | Read _ | Write _ | Update _ | Get_reducer _ | Set_reducer _ -> ())
      stmts
  in
  go p.body;
  !best
