open Rader_runtime

let dist2 a b =
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    let d = a.(i) -. b.(i) in
    acc := !acc +. (d *. d)
  done;
  !acc

(* Top-k nearest database entries for one query: a small insertion-sorted
   candidate array; pure computation shared by both versions. *)
let top_k db q k =
  let best_ids = Array.make k (-1) in
  let best_d = Array.make k infinity in
  Array.iteri
    (fun i v ->
      let d = dist2 q v in
      if d < best_d.(k - 1) then begin
        let pos = ref (k - 1) in
        while !pos > 0 && best_d.(!pos - 1) > d do
          best_d.(!pos) <- best_d.(!pos - 1);
          best_ids.(!pos) <- best_ids.(!pos - 1);
          decr pos
        done;
        best_d.(!pos) <- d;
        best_ids.(!pos) <- i
      end)
    db;
  best_ids

let result_line db q_idx q k =
  let ids = top_k db q k in
  Printf.sprintf "%d:%s\n" q_idx
    (String.concat "," (List.map string_of_int (Array.to_list ids)))

let make_queries ~seed ~db ~queries ~dim =
  (* queries are perturbed database entries, so matches are nontrivial *)
  let rng = Rader_support.Rng.create (seed + 17) in
  Array.init queries (fun _ ->
      let base = db.(Rader_support.Rng.int rng (Array.length db)) in
      Array.init dim (fun j -> base.(j) +. Rader_support.Rng.float rng 0.25))

let plain db qs k () =
  let buf = Buffer.create 4096 in
  Array.iteri (fun i q -> Buffer.add_string buf (result_line db i q k)) qs;
  Bench_def.fnv_string (Buffer.contents buf)

let cilk db qs k ctx =
  let out = Reducer.create ctx Rmonoid.ostream ~init:(Cell.make_in ctx (Buffer.create 4096)) in
  Cilk.parallel_for ctx ~lo:0 ~hi:(Array.length qs) (fun ctx i ->
      Rmonoid.ostream_emit ctx out (result_line db i qs.(i) k));
  Cilk.sync ctx;
  let final = Reducer.get_value ctx out in
  Bench_def.fnv_string (Buffer.contents (Cell.read ctx final))

let bench ~seed ~db ~queries ~dim ~topk =
  let database = Workloads.feature_vectors ~seed ~count:db ~dim in
  let qs = make_queries ~seed ~db:database ~queries ~dim in
  {
    Bench_def.name = "ferret";
    descr = "Image similarity search";
    input = Printf.sprintf "%d queries x %d db" queries db;
    plain = plain database qs topk;
    cilk = cilk database qs topk;
  }
