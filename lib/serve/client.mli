(** Client for the serve protocol — the engine behind [rader submit].

    One synchronous request per call. {!submit} retries [Retry_after]
    sheds with capped exponential backoff and full jitter, so a fleet of
    backing-off clients does not re-stampede a loaded server in sync. *)

type t

val connect : Server.addr -> (t, string) result
val close : t -> unit

(** The raw socket — used by the load driver's hostile-frame mode to
    bypass the encoder. Not for normal clients. *)
val fd : t -> Unix.file_descr

type outcome =
  | Verdict of Proto.verdict
  | Fault of string  (** server answered [Internal_fault] *)
  | Rejected of Proto.err  (** server answered [Proto_error] *)
  | Shed  (** still [Retry_after] once retries were exhausted *)

(** [submit t sub] sends and awaits the verdict, sleeping
    [uniform(0, min(cap_ms, base_ms * 2^attempt))] (never less than the
    server's hint) between shed retries. [Error] covers transport and
    protocol failures only — server-side outcomes are all [Ok]. *)
val submit :
  ?retries:int ->
  ?base_ms:int ->
  ?cap_ms:int ->
  t ->
  Proto.submit ->
  (outcome, string) result

val health : t -> (string, string) result

(** Ask the server to drain and exit (answered with [Bye]). *)
val shutdown : t -> (unit, string) result
