(* Word count with a user-defined dictionary reducer: the "any abstract
   data type" side of reducer hyperobjects (paper §1) — the monoid is a
   count-merging dictionary, associative but far from a built-in numeric
   reduction. Chunks of text are counted by a parallel loop; views merge
   pairwise; the result is schedule-independent and detector-clean.

   Run with: dune exec examples/wordcount.exe *)

open Rader_runtime
open Rader_core
module Monoids = Rader_monoid.Monoids
module Rng = Rader_support.Rng

let vocabulary =
  [| "the"; "reducer"; "view"; "steal"; "race"; "cilk"; "spawn"; "sync";
     "strand"; "monoid"; "worker"; "dag" |]

(* Zipf-ish text: word k chosen with probability ∝ 1/(k+1). *)
let generate_text ~seed ~n_words =
  let rng = Rng.create seed in
  let weights = Array.mapi (fun i _ -> 1.0 /. float_of_int (i + 1)) vocabulary in
  let total = Array.fold_left ( +. ) 0.0 weights in
  Array.init n_words (fun _ ->
      let x = Rng.float rng total in
      let rec pick i acc =
        let acc = acc +. weights.(i) in
        if x < acc || i = Array.length vocabulary - 1 then vocabulary.(i)
        else pick (i + 1) acc
      in
      pick 0 0.0)

let serial_count words = Monoids.counter_of_list (Array.to_list words)

let parallel_count words spec =
  let counter_monoid = Monoids.counter () in
  Cilk.exec ~spec (fun ctx ->
      let counts =
        Reducer.create ctx (Rmonoid.of_pure counter_monoid) ~init:[]
      in
      Cilk.parallel_for ~grain:64 ctx ~lo:0 ~hi:(Array.length words) (fun ctx i ->
          Reducer.update ctx counts (fun _ c ->
              counter_monoid.Rader_monoid.Monoid.combine c [ (words.(i), 1) ]));
      Cilk.sync ctx;
      Reducer.get_value ctx counts)

let () =
  print_endline "== Word count with a dictionary reducer ==";
  let words = generate_text ~seed:99 ~n_words:20_000 in
  let expected = serial_count words in
  List.iter
    (fun (name, spec) ->
      let counts, eng = parallel_count words spec in
      let s = Engine.stats eng in
      Printf.printf "%-22s %s (%d steals, %d reduces)\n" name
        (if counts = expected then "matches serial count" else "MISMATCH!")
        s.Engine.n_steals s.Engine.n_reduce_calls)
    [
      ("serial schedule", Steal_spec.none);
      ("all stolen, eager", Steal_spec.all ());
      ("all stolen, at sync", Steal_spec.all ~policy:Steal_spec.Reduce_at_sync ());
      ("random schedule", Steal_spec.random ~seed:3 ~density:0.3 ());
    ];
  Printf.printf "top words: %s\n"
    (String.concat ", "
       (List.filteri (fun i _ -> i < 4)
          (List.sort (fun (_, a) (_, b) -> compare b a) (Monoids.counter_entries expected))
       |> List.map (fun (w, c) -> Printf.sprintf "%s=%d" w c)));
  (* certify clean *)
  let eng = Engine.create () in
  let ps = Peer_set.attach eng in
  ignore
    (Engine.run eng (fun ctx ->
         let counter_monoid = Monoids.counter () in
         let counts = Reducer.create ctx (Rmonoid.of_pure counter_monoid) ~init:[] in
         Cilk.parallel_for ~grain:64 ctx ~lo:0 ~hi:(Array.length words) (fun ctx i ->
             Reducer.update ctx counts (fun _ c ->
                 counter_monoid.Rader_monoid.Monoid.combine c [ (words.(i), 1) ]));
         Cilk.sync ctx;
         ignore (Reducer.get_value ctx counts)));
  Printf.printf "Peer-Set: %d view-read races\n" (List.length (Peer_set.races ps))
