(** Structured failure taxonomy for the detection pipeline.

    Rader is pointed at {e buggy} programs, so the tool must outlive the
    program under test: an exception raised inside a user strand, a
    [Reduce] / [Create-Identity] callback, or a detector callback must not
    abort the analysis — it must be contained, carried with enough context
    to act on, and reported alongside whatever the detectors proved up to
    the failure point.

    This module defines the taxonomy shared by the whole pipeline. The
    engine produces these values ({!Engine.run_result}), the coverage
    sweep aggregates them ([Coverage.result.incomplete]), the chaos
    harness asserts them, and the CLI maps them to exit code 3. The
    [Rader_core.Diag] module re-exports this module under the name the
    rest of the core layer uses. *)

(** Where in the execution a failure originated. *)
type origin = {
  o_frame : int;  (** innermost frame alive at the failure, [-1] if none *)
  o_kind : Tool.frame_kind;  (** that frame's kind (user vs view-aware) *)
  o_depth : int;  (** that frame's spawn depth *)
  o_strand : int;  (** last strand id started before the failure *)
  o_spec : string;  (** name of the steal specification in force *)
}

(** Which monoid law a sampled self-check found violated. *)
type law = Associativity | Left_identity | Right_identity

type contract_violation = {
  cv_monoid : string;  (** monoid name as given to [Reducer.create] *)
  cv_law : law;
  cv_region : int;  (** view region current when the check ran *)
  cv_origin : origin;
  cv_detail : string;  (** human-readable account of the failed check *)
}

(** Which resource budget was exhausted. Payloads record the configured
    limit ([Deadline] carries the absolute [Unix.gettimeofday] value). *)
type budget_kind = Max_specs of int | Max_events of int | Deadline of float

type failure =
  | User_program_exn of { exn : string; backtrace : string; origin : origin }
      (** an exception escaped the program under test (user strand or a
          view-aware update/reduce/identity callback — [origin.o_kind]
          tells which) *)
  | Monoid_contract of contract_violation
      (** a sampled reducer self-check found a monoid law violated *)
  | Invalid_steal_spec of { spec : string; reason : string }
      (** the steal specification cannot fire on this program (indices
          beyond the profile's K, depth beyond D, …): the run silently
          degenerates to the serial schedule, which is almost never what
          the caller meant *)
  | Budget_exceeded of budget_kind  (** an event/deadline budget ran out *)
  | Engine_invariant of { what : string; origin : origin }
      (** a violation of Cilk discipline (future read before sync,
          spawn inside view-aware code, engine reuse, …) *)

exception Stop of budget_kind
(** Internal interrupt raised by the engine when a budget runs out.
    {!Engine.run_result} translates it into [Budget_exceeded]; it only
    escapes when budgets are used with the raising [Engine.run]. *)

val law_name : law -> string

val class_name : failure -> string
(** Stable short tag for the constructor: ["user-program-exn"],
    ["monoid-contract"], ["invalid-steal-spec"], ["budget-exceeded"],
    ["engine-invariant"] — for logs and test assertions. *)

val origin_to_string : origin -> string
val budget_to_string : budget_kind -> string

val to_string : failure -> string
(** One-paragraph human-readable rendering with the full context. *)
