lib/memory/shadow.ml: Rader_support
