type race_kind = View_read_race | Determinacy_race

type access_kind = Read | Write | Reducer_read

type t = {
  kind : race_kind;
  subject : int;
  subject_label : string;
  first_frame : int;
  first_access : access_kind;
  second_frame : int;
  second_access : access_kind;
  second_strand : int;
  second_view_aware : bool;
  detail : string;
}

let kind_str = function
  | View_read_race -> "view-read race"
  | Determinacy_race -> "determinacy race"

let access_str = function
  | Read -> "read"
  | Write -> "write"
  | Reducer_read -> "reducer-read"

let to_string r =
  Printf.sprintf "%s on %s: %s by frame %d vs %s%s by frame %d (strand %d)%s"
    (kind_str r.kind) r.subject_label
    (access_str r.first_access)
    r.first_frame
    (access_str r.second_access)
    (if r.second_view_aware then " [view-aware]" else "")
    r.second_frame r.second_strand
    (if r.detail = "" then "" else " — " ^ r.detail)

type collector = {
  mutable items : t list; (* reversed *)
  mutable n : int;
  seen : (race_kind * int, unit) Hashtbl.t;
}

let collector () = { items = []; n = 0; seen = Hashtbl.create 16 }

let report c r =
  let key = (r.kind, r.subject) in
  if not (Hashtbl.mem c.seen key) then begin
    Hashtbl.replace c.seen key ();
    c.items <- r :: c.items;
    c.n <- c.n + 1
  end

let clear c =
  c.items <- [];
  c.n <- 0;
  Hashtbl.reset c.seen

let races c = List.rev c.items

let count c = c.n

let racy_subjects c =
  List.sort_uniq compare (List.map (fun r -> r.subject) (races c))
