module Engine = Rader_runtime.Engine
module Tool = Rader_runtime.Tool
module Reach = Rader_reach.Reach
module Shadow = Rader_memory.Shadow
module Dynarr = Rader_support.Dynarr

(* The S/P/vid classification state lives behind [Reach.Sp] (either the
   original bag/disjoint-set backend or the DePa-style fingerprint one);
   this module keeps what is detector policy rather than precedence: the
   frame-kind stack, the reader/writer shadow spaces, the view-awareness
   rules and report collection. *)

type fstate = { fid : int; fkind : Tool.frame_kind }

type t = {
  eng : Engine.t;
  reach : Reach.Sp.t;
  stack : fstate Dynarr.t;
  reader : Shadow.t;
  writer : Shadow.t;
  collector : Report.collector;
}

let create ?(reach = Reach.Dset) eng =
  {
    eng;
    reach = Reach.Sp.create reach;
    stack = Dynarr.create ();
    reader = Shadow.create ();
    writer = Shadow.create ();
    collector = Report.collector ();
  }

let backend d = Reach.Sp.backend d.reach

let top d = Dynarr.top d.stack

let on_frame_enter d ~frame ~kind =
  (* Fig. 6, "F spawns or calls G": G's S bag and initial P bag inherit the
     view ID of F's top P bag (0 for the root frame). *)
  Reach.Sp.on_frame_enter d.reach ~frame;
  Dynarr.push d.stack { fid = frame; fkind = kind }

let on_frame_return d ~frame ~spawned =
  let g = Dynarr.pop d.stack in
  assert (g.fid = frame);
  (* G has synced: its P stack holds a single empty bag; only G.S moves.
     A returning Reduce invocation joins the P bag whose views it just
     merged (it is in series with those descendants but parallel to the
     sync block's later regions, paper §6); spawned children join the
     top P bag; called children are serial with F. *)
  Reach.Sp.on_frame_return d.reach ~frame
    ~parallel:(g.fkind = Tool.Reduce_fn || spawned)

let on_sync d ~frame =
  assert ((top d).fid = frame);
  Reach.Sp.on_sync d.reach ~frame

let on_steal d ~frame ~region = Reach.Sp.on_steal d.reach ~frame ~region

let on_reduce d ~frame ~into_region:_ ~from_region:_ =
  Reach.Sp.on_reduce d.reach ~frame

(* Shadow-entry classification, anchored at the current strand. *)
let classify d frame_id =
  if frame_id = Shadow.absent then Reach.Sp.Serial
  else Reach.Sp.classify d.reach frame_id

let report d ~loc ~first_frame ~first_access ~second_access ~frame ~view_aware ~detail =
  Report.report d.collector
    {
      Report.kind = Report.Determinacy_race;
      subject = loc;
      subject_label = Engine.loc_label d.eng loc;
      first_frame;
      first_access;
      second_frame = frame;
      second_access;
      second_strand = Engine.current_strand d.eng;
      second_view_aware = view_aware;
      detail;
    }

let check d ~loc ~frame ~view_aware ~first_frame ~first_access ~second_access =
  match classify d first_frame with
  | Reach.Sp.Serial -> ()
  | Reach.Sp.Parallel pv ->
      if not view_aware then
        report d ~loc ~first_frame ~first_access ~second_access ~frame ~view_aware
          ~detail:""
      else begin
        let cur = Reach.Sp.cur_view d.reach in
        if pv <> cur then
          report d ~loc ~first_frame ~first_access ~second_access ~frame ~view_aware
            ~detail:(Printf.sprintf "parallel views %d vs %d" pv cur)
      end

(* Shadow update: keep the recorded access unless it is serial with the
   current strand, or this is a reduce strand overwriting an entry of its
   own view (which the reduce serializes with). *)
let may_update d ~view_aware recorded =
  match classify d recorded with
  | Reach.Sp.Serial -> true
  | Reach.Sp.Parallel pv ->
      view_aware
      && (top d).fkind = Tool.Reduce_fn
      && pv = Reach.Sp.cur_view d.reach

let on_read d ~frame ~loc ~view_aware =
  check d ~loc ~frame ~view_aware
    ~first_frame:(Shadow.get d.writer loc)
    ~first_access:Report.Write ~second_access:Report.Read;
  let r = Shadow.get d.reader loc in
  if may_update d ~view_aware r then Shadow.set d.reader loc frame

let on_write d ~frame ~loc ~view_aware =
  check d ~loc ~frame ~view_aware
    ~first_frame:(Shadow.get d.reader loc)
    ~first_access:Report.Read ~second_access:Report.Write;
  check d ~loc ~frame ~view_aware
    ~first_frame:(Shadow.get d.writer loc)
    ~first_access:Report.Write ~second_access:Report.Write;
  let w = Shadow.get d.writer loc in
  if may_update d ~view_aware w then Shadow.set d.writer loc frame

let tool d =
  {
    Tool.on_frame_enter =
      (fun ~frame ~parent:_ ~spawned:_ ~kind -> on_frame_enter d ~frame ~kind);
    on_frame_return =
      (fun ~frame ~parent:_ ~spawned ~kind:_ -> on_frame_return d ~frame ~spawned);
    on_sync = (fun ~frame -> on_sync d ~frame);
    on_steal = (fun ~frame ~region -> on_steal d ~frame ~region);
    on_reduce =
      (fun ~frame ~into_region ~from_region ->
        on_reduce d ~frame ~into_region ~from_region);
    on_read = (fun ~frame ~loc ~view_aware -> on_read d ~frame ~loc ~view_aware);
    on_write = (fun ~frame ~loc ~view_aware -> on_write d ~frame ~loc ~view_aware);
    on_reducer_read = (fun ~frame:_ ~reducer:_ -> ());
  }

let attach ?reach eng =
  let d = create ?reach eng in
  Engine.set_tool eng (tool d);
  d

(* Recycle the detector alongside an [Engine.reset]: the precedence
   backend, the frame stack, both shadow spaces and the report collector
   are emptied but keep their grown arenas, and the detector re-arms
   itself as its engine's tool (the reset engine reverted to
   [Tool.null]). *)
let reset d =
  Reach.Sp.reset d.reach;
  Dynarr.clear d.stack;
  Shadow.clear d.reader;
  Shadow.clear d.writer;
  Report.clear d.collector;
  Engine.set_tool d.eng (tool d)

let races d = Report.races d.collector

let found d = Report.count d.collector > 0

let racy_locs d = Report.racy_subjects d.collector
