(* Empirical check of the paper's complexity bounds.

   Theorem 4: Peer-Set runs in O(T α(x,x)) for T events over x frames.
   Theorem 5: SP+ runs in O((T + Mτ) α(v,v)).

   Both bounds say the same operational thing: the amortized
   disjoint-set / shadow-space work per engine event is a small constant
   times α — and α is ≤ 4 for any input that fits in a machine, i.e.
   effectively flat. The obs layer counts exactly those operations
   (finds, unions, path-compression steps, bag ops, shadow ops), so the
   bound becomes testable: run the detectors on geometrically growing
   inputs and assert that (a) work per event never exceeds a small
   constant and (b) the ratio does not climb with input size (the slope
   check — a log factor would show up as steady growth across a
   geometric sweep; α cannot). *)

open Rader_runtime
open Rader_core
module Obs = Rader_obs.Obs

let checkb = Alcotest.(check bool)

let rec fib ctx n =
  if n < 2 then n
  else begin
    let a = Cilk.spawn ctx (fun ctx -> fib ctx (n - 1)) in
    let b = Cilk.call ctx (fun ctx -> fib ctx (n - 2)) in
    Cilk.sync ctx;
    Cilk.get ctx a + b
  end

(* pbfs-style flat data parallelism with a reducer: wide sync blocks, so
   steals and reduce operations scale with n *)
let reducer_loop n ctx =
  let r = Rmonoid.new_int_add ctx ~init:0 in
  Cilk.parallel_for ctx ~lo:0 ~hi:n (fun ctx i -> Rmonoid.add ctx r i);
  Cilk.sync ctx;
  ignore (Rmonoid.int_cell_value ctx r)

let delta_of ~attach program =
  snd
    (Obs.with_enabled (fun () ->
         let eng = Engine.create ~spec:(Steal_spec.all ()) () in
         let _det = attach eng in
         ignore (Engine.run_result eng program)))

(* (events, amortized detector ops per event) for one run *)
let measure ~attach ~ops program =
  let c = delta_of ~attach program in
  let events = c.Obs.events in
  checkb "run produced events" true (events > 0);
  (events, float_of_int (ops c) /. float_of_int events)

let assert_flat what ~cap ~max_growth points =
  List.iter
    (fun (size, events, ratio) ->
      Printf.printf "%s n=%-5d events=%-8d ops/event=%.3f\n" what size events
        ratio;
      checkb
        (Printf.sprintf "%s n=%d: amortized ops/event %.3f within constant %.1f"
           what size ratio cap)
        true (ratio <= cap))
    points;
  (* geometric input growth must not produce ratio growth: compare each
     size to the smallest — α is flat, a log factor is not *)
  let _, _, r0 = List.hd points in
  List.iter
    (fun (size, _, r) ->
      checkb
        (Printf.sprintf "%s n=%d: slope flat (%.3f vs %.3f at smallest size)"
           what size r r0)
        true (r <= r0 *. max_growth))
    (List.tl points);
  (* sanity: the sweep really was geometric in events *)
  let evs = List.map (fun (_, e, _) -> e) points in
  checkb (what ^ ": events grew at every step") true
    (List.sort compare evs = evs && List.length (List.sort_uniq compare evs) = List.length evs)

(* SP+ work is dset ops (series-parallel maintenance, path compression)
   plus shadow-space ops (Thm 5's traversal term) *)
let test_spplus_fib () =
  [ 10; 13; 16; 19 ]
  |> List.map (fun n ->
         let events, ratio =
           measure ~attach:Sp_plus.attach
             ~ops:(fun c -> Obs.dset_ops c + Obs.shadow_ops c)
             (fun ctx -> ignore (fib ctx n))
         in
         (n, events, ratio))
  |> assert_flat "sp+/fib" ~cap:2.0 ~max_growth:1.5

let test_spplus_reducer_loop () =
  [ 64; 256; 1024; 4096 ]
  |> List.map (fun n ->
         let events, ratio =
           measure ~attach:Sp_plus.attach
             ~ops:(fun c -> Obs.dset_ops c + Obs.shadow_ops c)
             (reducer_loop n)
         in
         (n, events, ratio))
  |> assert_flat "sp+/reducer-loop" ~cap:4.0 ~max_growth:1.5

(* Peer-Set work is bag ops (the disjoint-set SS/SP/P machinery of Fig. 3)
   plus the reader shadow spaces *)
let test_peerset_reducer_loop () =
  [ 64; 256; 1024; 4096 ]
  |> List.map (fun n ->
         let events, ratio =
           measure ~attach:Peer_set.attach
             ~ops:(fun c -> Obs.bag_ops c + Obs.shadow_ops c)
             (reducer_loop n)
         in
         (n, events, ratio))
  |> assert_flat "peerset/reducer-loop" ~cap:2.0 ~max_growth:1.5

(* The depa backend replaces the disjoint sets with DePa-style
   fingerprints: queries touch O(1) fingerprint words and epoch-table
   slots in the worst case, with no amortized path compression behind
   the bound. Its counters (reach ops) must stay flat across the same
   geometric sweeps — and the dset/bag counters must stay at exactly
   zero, or the backends are not actually disjoint cost models. *)

let depa_attach eng = Sp_plus.attach ~reach:Rader_reach.Reach.Depa eng
let depa_peer_attach eng = Peer_set.attach ~reach:Rader_reach.Reach.Depa eng

let test_depa_spplus_fib () =
  [ 10; 13; 16; 19 ]
  |> List.map (fun n ->
         let events, ratio =
           measure ~attach:depa_attach
             ~ops:(fun c -> Obs.reach_ops c + Obs.shadow_ops c)
             (fun ctx -> ignore (fib ctx n))
         in
         (n, events, ratio))
  |> assert_flat "sp+[depa]/fib" ~cap:2.0 ~max_growth:1.5

let test_depa_spplus_reducer_loop () =
  [ 64; 256; 1024; 4096 ]
  |> List.map (fun n ->
         let events, ratio =
           measure ~attach:depa_attach
             ~ops:(fun c -> Obs.reach_ops c + Obs.shadow_ops c)
             (reducer_loop n)
         in
         (n, events, ratio))
  |> assert_flat "sp+[depa]/reducer-loop" ~cap:4.0 ~max_growth:1.5

let test_depa_does_no_dset_work () =
  let c = delta_of ~attach:depa_attach (reducer_loop 512) in
  checkb "depa SP+ did reach work" true (Obs.reach_ops c > 0);
  checkb "depa SP+ does zero disjoint-set work" true (Obs.dset_ops c = 0);
  checkb "depa SP+ does zero bag work" true (Obs.bag_ops c = 0);
  let c = delta_of ~attach:depa_peer_attach (reducer_loop 512) in
  checkb "depa Peer-Set does zero disjoint-set work" true
    (Obs.dset_ops c = 0 && Obs.bag_ops c = 0)

let test_depa_peerset_reducer_loop () =
  [ 64; 256; 1024; 4096 ]
  |> List.map (fun n ->
         let events, ratio =
           measure ~attach:depa_peer_attach
             ~ops:(fun c -> Obs.reach_ops c + Obs.shadow_ops c)
             (reducer_loop n)
         in
         (n, events, ratio))
  |> assert_flat "peerset[depa]/reducer-loop" ~cap:2.0 ~max_growth:1.5

(* path compression is what makes the bounds amortized: verify it actually
   fires on a workload deep enough to build long find paths, and that its
   total cost stays within the linear budget. Frames join the disjoint
   set lazily at their first instrumented access, so the workload must
   touch memory — a pure-control program like fib does no dset work at
   all (that is the point of the lazy insertion). *)
let test_compression_amortizes () =
  let c = delta_of ~attach:Sp_plus.attach (reducer_loop 4096) in
  checkb "finds happened" true (c.Obs.dset_finds > 0);
  checkb "compression stays amortized: steps <= 2 * finds" true
    (c.Obs.dset_compress_steps <= 2 * c.Obs.dset_finds)

let () =
  Alcotest.run "complexity"
    [
      ( "alpha-bounds",
        [
          Alcotest.test_case "sp+ on fib" `Quick test_spplus_fib;
          Alcotest.test_case "sp+ on reducer loop" `Quick test_spplus_reducer_loop;
          Alcotest.test_case "peerset on reducer loop" `Quick
            test_peerset_reducer_loop;
          Alcotest.test_case "path compression amortizes" `Quick
            test_compression_amortizes;
        ] );
      ( "depa-bounds",
        [
          Alcotest.test_case "sp+[depa] on fib" `Quick test_depa_spplus_fib;
          Alcotest.test_case "sp+[depa] on reducer loop" `Quick
            test_depa_spplus_reducer_loop;
          Alcotest.test_case "peerset[depa] on reducer loop" `Quick
            test_depa_peerset_reducer_loop;
          Alcotest.test_case "depa does no dset work" `Quick
            test_depa_does_no_dset_work;
        ] );
    ]
