lib/sched/wsim.mli: Rader_runtime
