examples/minimax.ml: Cilk Engine List Peer_set Printf Rader_core Rader_monoid Rader_runtime Reducer Rmonoid Steal_spec
