(* End-to-end tests for the rader serve daemon: verdict parity with
   one-shot checks, the verdict cache, quota enforcement, backpressure,
   crash isolation + supervised respawn, restart-budget degradation,
   graceful drain, hostile-frame handling, and the chaos acceptance run
   (crash + stall + malformed frames at 10% — every request answered,
   verdicts unchanged, daemon never exits). *)

module Server = Rader_serve.Server
module Client = Rader_serve.Client
module Proto = Rader_serve.Proto
module Load = Rader_serve.Load
module Engine = Rader_runtime.Engine
module Steal_spec = Rader_runtime.Steal_spec
module Sp_plus = Rader_core.Sp_plus
module Report = Rader_core.Report
module Demos = Rader_benchsuite.Demos

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

let sock_counter = ref 0

let fresh_addr () =
  incr sock_counter;
  Server.Unix_path
    (Filename.concat
       (Filename.get_temp_dir_name ())
       (Printf.sprintf "rader-test-%d-%d.sock" (Unix.getpid ()) !sock_counter))

let sub ?(kind = Proto.Check) ?(scale = 1.0) ?(seed = 0) ?(spec = "all")
    ?(density = 0.5) ?max_events ?deadline_s ?(prune = true) program =
  { Proto.kind; program; scale; seed; spec; density; max_events; deadline_s;
    prune }

(* The one-shot ground truth: what `rader check PROG -s all` computes. *)
let direct_check name =
  let prog =
    match Demos.resolve ~seed:0 ~scale:1.0 name with
    | Ok p -> p
    | Error e -> failwith e
  in
  let eng = Engine.create ~spec:(Steal_spec.all ()) () in
  let det = Sp_plus.attach eng in
  match Engine.run_result eng prog with
  | Ok v -> (v, List.map Report.to_string (Sp_plus.races det))
  | Error _ -> failwith "direct run faulted"

let connect addr =
  match Client.connect addr with
  | Ok c -> c
  | Error e -> Alcotest.failf "connect: %s" e

let submit_ok ?retries c s =
  match Client.submit ?retries c s with
  | Ok o -> o
  | Error e -> Alcotest.failf "submit transport error: %s" e

let verdict_of = function
  | Client.Verdict v -> v
  | Client.Fault m -> Alcotest.failf "unexpected Internal_fault: %s" m
  | Client.Rejected e -> Alcotest.failf "unexpected Proto_error %d" e.Proto.code
  | Client.Shed -> Alcotest.fail "unexpected shed"

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* Extract "key":INT from the (flat-keyed) health JSON. *)
let json_int json key =
  let pat = Printf.sprintf "\"%s\":" key in
  let nh = String.length json and np = String.length pat in
  let rec find i =
    if i + np > nh then Alcotest.failf "health JSON lacks %s: %s" key json
    else if String.sub json i np = pat then i + np
    else find (i + 1)
  in
  let start = find 0 in
  let stop = ref start in
  while
    !stop < nh && (match json.[!stop] with '0' .. '9' | '-' -> true | _ -> false)
  do
    incr stop
  done;
  int_of_string (String.sub json start (!stop - start))

let wait_for ?(timeout_s = 5.0) pred what =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if pred () then ()
    else if Unix.gettimeofday () -. t0 > timeout_s then
      Alcotest.failf "timed out waiting for %s" what
    else begin
      Thread.delay 0.01;
      go ()
    end
  in
  go ()

let races_list = Alcotest.(list string)

(* ------------------------------------------------------------------ *)
(* Parity + cache                                                      *)
(* ------------------------------------------------------------------ *)

let test_parity_and_cache () =
  let t = Server.start (Server.default_config ~addr:(fresh_addr ())) in
  Fun.protect
    ~finally:(fun () -> ignore (Server.stop t))
    (fun () ->
      let c = connect (Server.bound_addr t) in
      let exp_res, exp_races = direct_check "fig1-buggy" in
      (* racy fixture: byte-identical race reports, same program result *)
      let v = verdict_of (submit_ok c (sub "fig1-buggy")) in
      Alcotest.(check bool) "racy status" true (v.Proto.status = Proto.Races);
      Alcotest.(check races_list) "racy reports" exp_races v.Proto.races;
      Alcotest.(check (option int)) "program result" (Some exp_res)
        v.Proto.v_result;
      Alcotest.(check bool) "first hit not cached" false v.Proto.cached;
      (* clean fixture *)
      let _, fixed_races = direct_check "fig1-fixed" in
      Alcotest.(check races_list) "fixed is clean one-shot" [] fixed_races;
      let v2 = verdict_of (submit_ok c (sub "fig1-fixed")) in
      Alcotest.(check bool) "clean status" true (v2.Proto.status = Proto.Clean);
      Alcotest.(check races_list) "clean reports" [] v2.Proto.races;
      (* resubmit: served from cache, verdict unchanged *)
      let v3 = verdict_of (submit_ok c (sub "fig1-buggy")) in
      Alcotest.(check bool) "second hit cached" true v3.Proto.cached;
      Alcotest.(check races_list) "cached reports identical" exp_races
        v3.Proto.races;
      (* health reflects it *)
      (match Client.health c with
      | Ok json ->
          Alcotest.(check int) "cache served" 1 (json_int json "cache_served")
      | Error e -> Alcotest.failf "health: %s" e);
      (* unknown program and bad spec come back as structured errors *)
      (match submit_ok c (sub "no-such-program") with
      | Client.Rejected e ->
          Alcotest.(check int) "unknown program code" Proto.err_unknown_program
            e.Proto.code
      | _ -> Alcotest.fail "unknown program not rejected");
      (match submit_ok c (sub ~spec:"bogus(" "fig1-buggy") with
      | Client.Rejected e ->
          Alcotest.(check int) "bad spec code" Proto.err_bad_spec e.Proto.code
      | _ -> Alcotest.fail "bad spec not rejected");
      Client.close c)

(* ------------------------------------------------------------------ *)
(* Quotas                                                              *)
(* ------------------------------------------------------------------ *)

let test_quota_partial () =
  let t = Server.start (Server.default_config ~addr:(fresh_addr ())) in
  Fun.protect
    ~finally:(fun () -> ignore (Server.stop t))
    (fun () ->
      let c = connect (Server.bound_addr t) in
      (* starved event budget: over-budget runs degrade to Partial *)
      let v = verdict_of (submit_ok c (sub ~max_events:1 "wordcount")) in
      Alcotest.(check bool) "event-budget partial" true
        (v.Proto.status = Proto.Partial);
      Alcotest.(check bool) "failure names the budget class" true
        (List.exists (fun (cls, _) -> contains cls "budget") v.Proto.failures);
      (* an already-expired deadline is charged at dispatch, not run *)
      let v2 =
        verdict_of (submit_ok c (sub ~deadline_s:(-1.0) "fig1-buggy"))
      in
      Alcotest.(check bool) "expired-deadline partial" true
        (v2.Proto.status = Proto.Partial);
      Alcotest.(check bool) "deadline diagnostic" true
        (List.exists (fun (_, msg) -> contains msg "deadline") v2.Proto.failures);
      Client.close c)

(* ------------------------------------------------------------------ *)
(* Backpressure                                                        *)
(* ------------------------------------------------------------------ *)

let test_backpressure_sheds () =
  let cfg =
    {
      (Server.default_config ~addr:(fresh_addr ())) with
      Server.workers = 1;
      queue_depth = 1;
      retry_after_ms = 10;
    }
  in
  let t = Server.start cfg in
  Fun.protect
    ~finally:(fun () -> ignore (Server.stop t))
    (fun () ->
      (* 4 simultaneous ~800ms checks against 1 worker + queue depth 1:
         at least one must be answered Retry_after; with retries:0 the
         client gives up and records the shed. Nothing goes silent. *)
      let r =
        Load.run ~retries:0 ~addr:(Server.bound_addr t) ~clients:4
          ~requests_per_client:1
          ~make:(fun i -> sub ~scale:2.0 ~seed:i "minimax")
          ()
      in
      Alcotest.(check int) "every request answered" r.Load.tally.Load.sent
        (Load.answered r.Load.tally);
      Alcotest.(check bool) "overload sheds" true (r.Load.tally.Load.sheds > 0);
      Alcotest.(check bool) "some requests complete" true
        (r.Load.tally.Load.verdicts > 0);
      Alcotest.(check int) "no transport errors" 0
        r.Load.tally.Load.transport_errors)

(* ------------------------------------------------------------------ *)
(* Crash isolation + supervision                                       *)
(* ------------------------------------------------------------------ *)

let test_crash_isolation_respawn () =
  let cfg =
    {
      (Server.default_config ~addr:(fresh_addr ())) with
      Server.workers = 1;
      restart_budget = 100;
      restart_window_s = 3600.0;
      chaos_cfg =
        Some { Server.crash_rate = 1.0; stall_rate = 0.0; chaos_seed = 7 };
    }
  in
  let t = Server.start cfg in
  Fun.protect
    ~finally:(fun () -> ignore (Server.stop t))
    (fun () ->
      let c = connect (Server.bound_addr t) in
      (* every request crashes its worker; each must still be answered
         with a structured Internal_fault, and the supervisor must have
         respawned the worker before the next one is served *)
      for i = 1 to 3 do
        (match submit_ok c (sub ~seed:i "fig1-buggy") with
        | Client.Fault msg ->
            Alcotest.(check bool) "fault carries a message" true
              (String.length msg > 0)
        | _ -> Alcotest.failf "request %d not answered with a fault" i);
        wait_for
          (fun () ->
            let j = Server.health_json t in
            json_int j "restarts" >= i && json_int j "live" = 1)
          (Printf.sprintf "respawn %d" i)
      done;
      let j = Server.health_json t in
      Alcotest.(check int) "three respawns" 3 (json_int j "restarts");
      Alcotest.(check bool) "pool not degraded" true
        (not (contains j "\"degraded\":true"));
      Client.close c)

let test_restart_budget_degrades () =
  let cfg =
    {
      (Server.default_config ~addr:(fresh_addr ())) with
      Server.workers = 1;
      restart_budget = 0;
      restart_window_s = 3600.0;
      retry_after_ms = 10;
      chaos_cfg =
        Some { Server.crash_rate = 1.0; stall_rate = 0.0; chaos_seed = 7 };
    }
  in
  let t = Server.start cfg in
  Fun.protect
    ~finally:(fun () -> ignore (Server.stop t))
    (fun () ->
      let c = connect (Server.bound_addr t) in
      (match submit_ok c (sub "fig1-buggy") with
      | Client.Fault _ -> ()
      | _ -> Alcotest.fail "first request should fault");
      (* budget 0: no respawn allowed — the pool must degrade to
         shedding rather than loop on the hot fault *)
      wait_for
        (fun () -> contains (Server.health_json t) "\"degraded\":true")
        "pool degradation";
      (match submit_ok ~retries:0 c (sub ~seed:2 "fig1-buggy") with
      | Client.Shed -> ()
      | _ -> Alcotest.fail "degraded pool should shed");
      let j = Server.health_json t in
      Alcotest.(check int) "no live workers" 0 (json_int j "live");
      Client.close c)

(* ------------------------------------------------------------------ *)
(* Graceful drain                                                      *)
(* ------------------------------------------------------------------ *)

let test_graceful_drain () =
  let addr = fresh_addr () in
  let t = Server.start (Server.default_config ~addr) in
  let c = connect (Server.bound_addr t) in
  ignore (verdict_of (submit_ok c (sub "fig1-buggy")));
  (* a Shutdown request triggers the same drain as SIGTERM *)
  (match Client.shutdown c with
  | Ok () -> ()
  | Error e -> Alcotest.failf "shutdown: %s" e);
  let final = Server.wait t in
  Alcotest.(check bool) "final flush is draining" true
    (contains final "\"draining\":true");
  Alcotest.(check int) "all answered" (json_int final "admitted")
    (json_int final "answered");
  (* the listener is gone: unix socket unlinked, connects refused *)
  (match addr with
  | Server.Unix_path p ->
      Alcotest.(check bool) "socket unlinked" false (Sys.file_exists p)
  | Server.Tcp _ -> ());
  (match Client.connect addr with
  | Ok c2 ->
      Client.close c2;
      Alcotest.fail "connect succeeded after drain"
  | Error _ -> ());
  (* a second stop on a drained server is a no-op, not a hang *)
  ignore (Server.stop t);
  Client.close c

(* ------------------------------------------------------------------ *)
(* Hostile frames against a live server                                *)
(* ------------------------------------------------------------------ *)

let test_malformed_frames_live () =
  let t = Server.start (Server.default_config ~addr:(fresh_addr ())) in
  Fun.protect
    ~finally:(fun () -> ignore (Server.stop t))
    (fun () ->
      let c = connect (Server.bound_addr t) in
      let fd = Client.fd c in
      (* frame-valid garbage (bad version byte): structured Proto_error,
         and the connection survives at the frame boundary *)
      let body = Proto.encode_request ~id:5 Proto.Health in
      let bad = Bytes.of_string body in
      Bytes.set bad 0 '\xff';
      Proto.send fd (Bytes.to_string bad);
      (match Proto.recv fd with
      | Ok reply -> (
          match Proto.decode_response reply with
          | Ok (_, Proto.Proto_error e) ->
              Alcotest.(check int) "bad version answered" Proto.err_bad_version
                e.Proto.code
          | _ -> Alcotest.fail "expected Proto_error")
      | Error _ -> Alcotest.fail "no reply to frame-valid garbage");
      (* same connection still serves valid requests *)
      (match Client.health c with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "conn dead after recoverable garbage: %s" e);
      (* oversized length prefix: error + close, daemon unharmed *)
      ignore (Unix.write fd (Bytes.of_string "\x7f\xff\xff\xff") 0 4);
      (match Proto.recv fd with
      | Ok reply -> (
          match Proto.decode_response reply with
          | Ok (_, Proto.Proto_error _) -> ()
          | _ -> Alcotest.fail "expected Proto_error for oversized prefix")
      | Error _ -> (* clean close is also acceptable *) ());
      Client.close c;
      (* mid-request disconnect: promise a frame, send half, vanish *)
      let c2 = connect (Server.bound_addr t) in
      ignore
        (Unix.write (Client.fd c2) (Bytes.of_string "\x00\x00\x00\x40ab") 0 6);
      Client.close c2;
      (* the daemon shrugs all of it off and keeps serving *)
      let c3 = connect (Server.bound_addr t) in
      let v = verdict_of (submit_ok c3 (sub "fig1-fixed")) in
      Alcotest.(check bool) "still serving verdicts" true
        (v.Proto.status = Proto.Clean);
      Client.close c3)

(* ------------------------------------------------------------------ *)
(* The acceptance run: chaos at 10% on every axis                      *)
(* ------------------------------------------------------------------ *)

let test_chaos_acceptance () =
  let cfg =
    {
      (Server.default_config ~addr:(fresh_addr ())) with
      Server.workers = 2;
      queue_depth = 64;
      restart_budget = 10_000;
      restart_window_s = 3600.0;
      retry_after_ms = 5;
      chaos_cfg =
        Some { Server.crash_rate = 0.1; stall_rate = 0.1; chaos_seed = 1337 };
    }
  in
  let t = Server.start cfg in
  Fun.protect
    ~finally:(fun () -> ignore (Server.stop t))
    (fun () ->
      (* 500 requests from 4 clients; 10% of workers crash mid-request,
         10% stall past their deadline, and 10% of requests are preceded
         by a malformed frame. Distinct seeds defeat the verdict cache so
         every request actually reaches a worker. *)
      let r =
        Load.run ~seed:99 ~malformed_rate:0.1 ~retries:8
          ~addr:(Server.bound_addr t) ~clients:4 ~requests_per_client:125
          ~make:(fun i -> sub ~seed:i "fig1-buggy")
          ()
      in
      let tally = r.Load.tally in
      Alcotest.(check int) "500 sent" 500 tally.Load.sent;
      Alcotest.(check int) "every request answered" 500 (Load.answered tally);
      Alcotest.(check int) "no transport errors" 0 tally.Load.transport_errors;
      (* each chaos axis demonstrably fired *)
      Alcotest.(check bool) "crashes fired" true (tally.Load.faults > 0);
      Alcotest.(check bool) "stalls fired" true (tally.Load.partials > 0);
      Alcotest.(check bool) "malformed frames fired" true
        (tally.Load.malformed_sent > 0);
      Alcotest.(check bool) "most requests still complete" true
        (tally.Load.verdicts > 250);
      (* the daemon never exited: it is still answering, its pool is
         live, and the supervisor really did respawn crashed workers *)
      let j = Server.health_json t in
      Alcotest.(check bool) "workers respawned" true (json_int j "restarts" > 0);
      Alcotest.(check bool) "pool alive" true (json_int j "live" > 0);
      Alcotest.(check bool) "not degraded" true
        (not (contains j "\"degraded\":true"));
      (* verdict parity under chaos: keep probing (fresh seeds dodge the
         cache; chaos fates are per-job) until a complete verdict lands,
         then demand byte-identical race reports vs the one-shot check *)
      let c = connect (Server.bound_addr t) in
      let probe name =
        let rec go i =
          if i >= 50 then Alcotest.failf "no complete verdict for %s" name
          else
            match submit_ok ~retries:8 c (sub ~seed:(10_000 + i) name) with
            | Client.Verdict v when v.Proto.status <> Proto.Partial -> v
            | _ -> go (i + 1)
        in
        go 0
      in
      let exp_res, exp_races = direct_check "fig1-buggy" in
      let v = probe "fig1-buggy" in
      Alcotest.(check races_list) "racy verdict unchanged under chaos"
        exp_races v.Proto.races;
      Alcotest.(check (option int)) "result unchanged under chaos"
        (Some exp_res) v.Proto.v_result;
      let v2 = probe "fig1-fixed" in
      Alcotest.(check bool) "clean verdict unchanged under chaos" true
        (v2.Proto.status = Proto.Clean);
      Alcotest.(check races_list) "no races under chaos" [] v2.Proto.races;
      Client.close c)

let () =
  Alcotest.run "rader serve"
    [
      ( "service",
        [
          Alcotest.test_case "verdict parity + cache" `Quick
            test_parity_and_cache;
          Alcotest.test_case "quotas degrade to partial" `Quick
            test_quota_partial;
          Alcotest.test_case "backpressure sheds, never hangs" `Quick
            test_backpressure_sheds;
        ] );
      ( "supervision",
        [
          Alcotest.test_case "crash isolation + respawn" `Quick
            test_crash_isolation_respawn;
          Alcotest.test_case "restart budget degrades pool" `Quick
            test_restart_budget_degrades;
          Alcotest.test_case "graceful drain" `Quick test_graceful_drain;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "hostile frames on a live server" `Quick
            test_malformed_frames_live;
          Alcotest.test_case "chaos acceptance: 500 requests" `Quick
            test_chaos_acceptance;
        ] );
    ]
