(** Collision detection in 3D (the paper's [collision] benchmark): spheres
    are binned into a uniform grid; cells are scanned by a parallel loop
    that tests all pairs within a cell and appends hits to a
    "hypervector" reducer (an append/concatenate vector monoid). The
    checksum folds the ordered list of colliding pairs, so the reducer's
    order-preservation is part of what is verified. *)

val bench : seed:int -> n:int -> world:float -> cell:float -> Bench_def.t
