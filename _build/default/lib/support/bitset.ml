type t = { words : Bytes.t; n : int }

(* We store the bits in Bytes interpreted as 64-bit words via get/set_int64
   to keep the representation flat and copyable. *)

let words_for n = (n + 63) / 64

let create n =
  if n < 0 then invalid_arg "Bitset.create";
  { words = Bytes.make (8 * words_for n) '\000'; n }

let capacity t = t.n

let check t i =
  if i < 0 || i >= t.n then invalid_arg "Bitset: index out of range"

let word t w = Bytes.get_int64_le t.words (8 * w)
let set_word t w v = Bytes.set_int64_le t.words (8 * w) v

let add t i =
  check t i;
  let w = i lsr 6 and b = i land 63 in
  set_word t w (Int64.logor (word t w) (Int64.shift_left 1L b))

let remove t i =
  check t i;
  let w = i lsr 6 and b = i land 63 in
  set_word t w (Int64.logand (word t w) (Int64.lognot (Int64.shift_left 1L b)))

let mem t i =
  check t i;
  let w = i lsr 6 and b = i land 63 in
  Int64.logand (word t w) (Int64.shift_left 1L b) <> 0L

let same_capacity a b =
  if a.n <> b.n then invalid_arg "Bitset: capacity mismatch"

let union_into dst src =
  same_capacity dst src;
  for w = 0 to words_for dst.n - 1 do
    set_word dst w (Int64.logor (word dst w) (word src w))
  done

let equal a b =
  same_capacity a b;
  Bytes.equal a.words b.words

let copy t = { words = Bytes.copy t.words; n = t.n }

let popcount64 x =
  let open Int64 in
  let x = sub x (logand (shift_right_logical x 1) 0x5555555555555555L) in
  let x = add (logand x 0x3333333333333333L) (logand (shift_right_logical x 2) 0x3333333333333333L) in
  let x = logand (add x (shift_right_logical x 4)) 0x0F0F0F0F0F0F0F0FL in
  to_int (shift_right_logical (mul x 0x0101010101010101L) 56)

let cardinal t =
  let c = ref 0 in
  for w = 0 to words_for t.n - 1 do
    c := !c + popcount64 (word t w)
  done;
  !c

let iter f t =
  for i = 0 to t.n - 1 do
    if mem t i then f i
  done

let to_list t =
  let acc = ref [] in
  for i = t.n - 1 downto 0 do
    if mem t i then acc := i :: !acc
  done;
  !acc

let inter_nonempty a b =
  same_capacity a b;
  let rec go w =
    w < words_for a.n
    && (Int64.logand (word a w) (word b w) <> 0L || go (w + 1))
  in
  go 0
