module Engine = Rader_runtime.Engine
module Tool = Rader_runtime.Tool
module Sp_hot = Rader_runtime.Sp_hot
module Reach = Rader_reach.Reach

(* The per-event state of SP+ — the S/P/vid precedence core, the
   frame-kind stack and the reader/writer shadow spaces — lives in
   [Rader_runtime.Sp_hot] so the [Tool] variant dispatches into it with a
   single match. This module is the cold-path policy wrapper: it owns the
   report collector and turns the raw-int race callback into [Report]
   records (labels, strand ids, detail strings), plus the attach/reset
   lifecycle. *)

type t = {
  eng : Engine.t;
  hot : Sp_hot.t;
  collector : Report.collector;
}

let access_of_write w = if w then Report.Write else Report.Read

let create ?(reach = Reach.Dset) eng =
  let hot = Sp_hot.create ~backend:reach () in
  let d = { eng; hot; collector = Report.collector () } in
  Sp_hot.set_on_race hot
    (fun ~loc ~first_frame ~first_is_write ~second_frame ~second_is_write
         ~view_aware ~pv ~cur ->
      Report.report d.collector
        {
          Report.kind = Report.Determinacy_race;
          subject = loc;
          subject_label = Engine.loc_label d.eng loc;
          first_frame;
          first_access = access_of_write first_is_write;
          second_frame;
          second_access = access_of_write second_is_write;
          second_strand = Engine.current_strand d.eng;
          second_view_aware = view_aware;
          detail =
            (if view_aware then
               Printf.sprintf "parallel views %d vs %d" pv cur
             else "");
        });
  d

let backend d = Sp_hot.backend d.hot

let tool d = Tool.sp_plus d.hot

let attach ?reach eng =
  let d = create ?reach eng in
  Engine.set_tool eng (tool d);
  d

(* Recycle the detector alongside an [Engine.reset]: the precedence
   backend, the frame stack, both shadow spaces and the report collector
   are emptied but keep their grown arenas, and the detector re-arms
   itself as its engine's tool (the reset engine reverted to
   [Tool.null]). *)
let reset d =
  Sp_hot.reset d.hot;
  Report.clear d.collector;
  Engine.set_tool d.eng (tool d)

let races d = Report.races d.collector

let found d = Report.count d.collector > 0

let racy_locs d = Report.racy_subjects d.collector
