open Rader_runtime
module Fp = Rader_reach.Reach.Fp
module Report = Rader_core.Report
module Steal_trace = Rader_core.Steal_trace
module Ws_deque = Rader_support.Ws_deque
module Dynarr = Rader_support.Dynarr
module Obs = Rader_obs.Obs

type config = {
  workers : int;
  seed : int;
  density : float;
  reach : Rader_reach.Reach.backend;
  stripes : int option;
  max_events : int option;
  deadline : float option;
  clock : (unit -> float) option;
}

let default ?(workers = 2) ?(seed = 1) ?(density = 0.5) () =
  {
    workers;
    seed;
    density;
    reach = Rader_reach.Reach.Depa;
    stripes = None;
    max_events = None;
    deadline = None;
    clock = None;
  }

type outcome = {
  value : (int, Fault.failure) result;
  races : Report.t list;
  trace : Steal_trace.t;
  n_structural_steals : int;
  n_tasks : int;
  n_deque_steals : int;
  n_parks : int;
  events : int;
  counters : Obs.counters option;
}

(* Raised inside worker tasks once another worker has recorded the run's
   first failure: unwinds the task quietly, reported by nobody. *)
exception Cancelled

let err fmt = Printf.ksprintf (fun s -> raise (Engine.Cilk_error s)) fmt

(* ---------- runtime data structures ---------- *)

(* A view region. Created at root entry and at every structural steal;
   owns the reducer views that live in it ([reducer id -> view]). The
   Cilk view invariant gives single-owner access: at any moment exactly
   one serial chain of strands runs "in" a region, so its table needs no
   lock — region {e handoff} (spawn publication, sync join, merge) is
   ordered by the deque atomics and the frame lock. *)
type oregion = { orid : int; oviews : (int, Obj.t) Hashtbl.t }

(* One live user frame. Structural fields ([rs], [rpath], [phash],
   [cum_entry], [fid], [base]) are written once at creation; the mutable
   counters are only ever touched by the frame's current executor (frame
   bodies are a single logical thread even when their segments migrate
   across workers); [outstanding]/[parked] are the sync join state,
   guarded by [lock]. *)
type ofr = {
  fid : int;
  rs : Fp.frame;
  mutable seq : int;  (* per-frame child-creation counter *)
  mutable block : int;  (* current sync block *)
  mutable nuser : int;  (* user children created (spawn + call) *)
  mutable nspawns : int;  (* spawns performed, across blocks *)
  mutable ls : int;  (* spawns since the last sync (Peer-Set [ls]) *)
  cum_entry : int;  (* chain-spawn stamp at frame entry *)
  sc_entry : int;  (* serial spawn count at frame entry (Peer-Set [anc]) *)
  mutable region : oregion;  (* current view region *)
  base : oregion;  (* entry region: everything merges back here *)
  mutable opens : oregion list;  (* steal-opened regions, newest first *)
  lock : Mutex.t;
  mutable outstanding : int;  (* stolen children not yet returned *)
  mutable parked : (unit -> unit) option;  (* suspended sync resumption *)
  rpath : int list;  (* user-child ordinals, frame -> root (reversed) *)
  phash : int;  (* rolling structural hash of [rpath] *)
  items : oitem Dynarr.t;
      (* the frame's serial-order event skeleton (children, aux frames,
         syncs), pushed only by the frame's current executor — enough to
         replay the serial engine's frame/strand numbering post-run *)
  mutable in_merge : bool;  (* executing this frame's sync-time merges *)
}

(* One serially-ordered event on a frame. Mirrors exactly what consumes a
   frame id or a strand id in the serial engine: a user child (fresh fid,
   enter strand, subtree, implicit sync strand, then a continue strand on
   this frame), an auxiliary frame (fresh fid + one strand; a continue
   strand unless it is a reduce running inside a merge), or a sync
   (unconditionally one strand, after the merge reduces). *)
and oitem =
  | It_user of ofr
  | It_aux of { continue : bool }
  | It_sync

(* The [Obj.t] payload behind [Engine.ctx]: which frame, whether we are
   inside a view-aware auxiliary callback of it, and — if so — which
   [It_aux] item of the frame that callback is ([-1] for user code). *)
type ost = { fr : ofr; aux_kind : Tool.frame_kind; aux_item : int }

(* A race endpoint, recorded at access time and resolved to the serial
   replay's (frame, strand) ids after the run: either user code on [ep_fr]
   after [ep_item] recorded items, or the auxiliary frame at item index
   [ep_item]. *)
type ep = { ep_fr : ofr; ep_item : int; ep_aux : bool }

let ep_of (o : ost) =
  if o.aux_item >= 0 then { ep_fr = o.fr; ep_item = o.aux_item; ep_aux = true }
  else
    { ep_fr = o.fr; ep_item = Dynarr.length o.fr.items; ep_aux = false }

let ost_of ctx : ost = Obj.obj (Engine.ctx_ost ctx)

let point_of (o : ost) =
  let fr = o.fr in
  {
    Fp.p_frame = fr.rs;
    p_block = fr.block;
    p_seq = fr.seq;
    p_rid = fr.region.orid;
    p_cum = fr.cum_entry + fr.nspawns;
  }

(* ---------- lock-striped shadow spaces ---------- *)

(* Stripe width: an explicit [stripes] rounds up to a power of two (the
   slot index is a mask); the default scales with the worker count so
   contention stays flat as domains are added, floored at the historical
   64-way layout. *)
let next_pow2 n =
  let rec go k = if k >= n then k else go (k * 2) in
  go 1

let stripe_count cfg =
  match cfg.stripes with
  | None -> max 64 (next_pow2 (cfg.workers * 16))
  | Some s ->
      if s < 1 then invalid_arg "Online.run: stripes must be >= 1";
      next_pow2 s

(* Determinacy shadow: serially-last writer plus serially-least and
   -greatest readers per location, each with the endpoint descriptor that
   produced it. The SP-order retention lemma (if x is parallel to a
   dropped reader r with min <= r <= max in serial order, then x is
   parallel to min or to max) makes the racy-location set independent of
   the order workers reach the table. *)
type dslot = {
  mutable w : (Fp.point * bool * ep) option;  (* point, view_aware, endpoint *)
  mutable rmin : (Fp.point * bool * ep) option;
  mutable rmax : (Fp.point * bool * ep) option;
}

(* Peer-Set shadow: serially-least/-greatest reducer-read per reducer,
   each with its serial spawn count (the number of outstanding spawns on
   the reading frame's ancestor chain — Lemma 3's peer-set key). *)
type pslot = {
  mutable pmin : (Fp.point * int * ep) option;
  mutable pmax : (Fp.point * int * ep) option;
}

type 'slot stripes = { mus : Mutex.t array; tbls : (int, 'slot) Hashtbl.t array }

let stripes n =
  {
    mus = Array.init n (fun _ -> Mutex.create ());
    tbls = Array.init n (fun _ -> Hashtbl.create 64);
  }

let with_slot st key ~fresh f =
  let i = key land (Array.length st.mus - 1) in
  Mutex.lock st.mus.(i);
  Fun.protect
    ~finally:(fun () -> Mutex.unlock st.mus.(i))
    (fun () ->
      let slot =
        match Hashtbl.find_opt st.tbls.(i) key with
        | Some s -> s
        | None ->
            let s = fresh () in
            Hashtbl.add st.tbls.(i) key s;
            s
      in
      f slot)

(* ---------- the runtime ---------- *)

(* A race recorded during the run, with raw endpoint descriptors; the
   (frame, strand) ids are resolved after all workers join, by replaying
   the serial engine's numbering over the recorded item skeleton. *)
type proto = {
  pr_kind : Report.race_kind;
  pr_subject : int;
  pr_label : string;
  pr_first : ep;
  pr_first_access : Report.access_kind;
  pr_second : ep;
  pr_second_access : Report.access_kind;
  pr_second_aware : bool;
}

type rt = {
  eng : Engine.t;
  cfg : config;
  clock : unit -> float;
  deques : (unit -> unit) Ws_deque.t array;
  finished : bool Atomic.t;
  cancel : bool Atomic.t;
  fail_mu : Mutex.t;
  mutable failure : Fault.failure option;  (* first failure wins *)
  result : int option Atomic.t;
  events : int Atomic.t;
  next_fid : int Atomic.t;
  next_rid : int Atomic.t;
  merges_mu : Mutex.t;
  merges : (Engine.ctx -> from_region:int -> into_region:int -> unit) Dynarr.t;
  alloc_mu : Mutex.t;
  dshadow : dslot stripes;
  pshadow : pslot stripes;
  races_mu : Mutex.t;
  protos : proto Dynarr.t;
  seen : (Report.race_kind * int, unit) Hashtbl.t;  (* per-subject dedup *)
  trace_mu : Mutex.t;
  trace : Steal_trace.entry Dynarr.t;
  n_struct : int Atomic.t;
  n_tasks : int Atomic.t;
  n_deque_steals : int Atomic.t;
  n_parks : int Atomic.t;
}

let origin_of rt =
  {
    Fault.o_frame = -1;
    o_kind = Tool.User_fn;
    o_depth = -1;
    o_strand = -1;
    o_spec =
      Printf.sprintf "online(seed=%d,density=%g)" rt.cfg.seed rt.cfg.density;
  }

let record_failure rt f =
  Mutex.lock rt.fail_mu;
  if rt.failure = None then rt.failure <- Some f;
  Mutex.unlock rt.fail_mu;
  Atomic.set rt.cancel true

let contain rt = function
  | Cancelled -> ()
  | Fault.Stop b -> record_failure rt (Fault.Budget_exceeded b)
  | Engine.Cilk_error m ->
      record_failure rt (Fault.Engine_invariant { what = m; origin = origin_of rt })
  | e ->
      let backtrace = Printexc.get_backtrace () in
      record_failure rt
        (Fault.User_program_exn
           { exn = Printexc.to_string e; backtrace; origin = origin_of rt })

(* Global event budget: cancellation, event cap, deadline (checked every
   64 events, same cadence class as the serial engine's). *)
let bump rt =
  if Atomic.get rt.cancel then raise Cancelled;
  let n = 1 + Atomic.fetch_and_add rt.events 1 in
  (match rt.cfg.max_events with
  | Some m when n > m -> raise (Fault.Stop (Fault.Max_events m))
  | _ -> ());
  match rt.cfg.deadline with
  | Some dl when (n land 63 = 0 || n = 1) && rt.clock () > dl ->
      raise (Fault.Stop (Fault.Deadline dl))
  | _ -> ()

let fresh_region rt =
  { orid = Atomic.fetch_and_add rt.next_rid 1; oviews = Hashtbl.create 4 }

let mk_frame rt ~rs ~cum_entry ~sc_entry ~region ~rpath ~phash =
  {
    fid = Atomic.fetch_and_add rt.next_fid 1;
    rs;
    seq = 0;
    block = 0;
    nuser = 0;
    nspawns = 0;
    ls = 0;
    cum_entry;
    sc_entry;
    region;
    base = region;
    opens = [];
    lock = Mutex.create ();
    outstanding = 0;
    parked = None;
    rpath;
    phash;
    items = Dynarr.create ();
    in_merge = false;
  }

(* ---------- structural steal decisions ---------- *)

(* [Hashtbl.hash] is deterministic across runs and domains, which is all
   the decision needs; the victim-selection rng (placement only) is the
   seeded one. *)
let child_phash parent_phash ord = Hashtbl.hash (parent_phash, ord, 0x9e3779b9)

let steal_decision rt fr sord =
  let h = Hashtbl.hash (rt.cfg.seed, fr.phash, sord, 0x85ebca6b) land 0xffffff in
  float_of_int h < rt.cfg.density *. 16777216.

(* ---------- worker identity and task queue ---------- *)

let wid_key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> -1)

let push_my rt task =
  let w = Domain.DLS.get wid_key in
  Ws_deque.push rt.deques.(w) task

(* ---------- detection ---------- *)

(* Record a proto-report, first race per (kind, subject) wins — the same
   dedup rule as [Report.collector]. *)
let record_proto rt p =
  Mutex.lock rt.races_mu;
  let key = (p.pr_kind, p.pr_subject) in
  if not (Hashtbl.mem rt.seen key) then begin
    Hashtbl.add rt.seen key ();
    Dynarr.push rt.protos p
  end;
  Mutex.unlock rt.races_mu

let report_determinacy rt loc ~first ~first_access ~second ~second_access
    ~second_aware =
  record_proto rt
    {
      pr_kind = Report.Determinacy_race;
      pr_subject = loc;
      pr_label = Engine.loc_label rt.eng loc;
      pr_first = first;
      pr_first_access = first_access;
      pr_second = second;
      pr_second_access = second_access;
      pr_second_aware = second_aware;
    }

let report_view_read rt reducer ~first ~second =
  record_proto rt
    {
      pr_kind = Report.View_read_race;
      pr_subject = reducer;
      pr_label = Printf.sprintf "reducer #%d" reducer;
      pr_first = first;
      pr_first_access = Report.Reducer_read;
      pr_second = second;
      pr_second_access = Report.Reducer_read;
      pr_second_aware = false;
    }

(* SP+ determinacy rule on a (stored, current) pair: parallel, and — when
   the serially-later endpoint is view-aware — operating on views that
   are still distinct at the later endpoint ([earlier_entry_rid] is the
   earlier side's surviving region under the at-sync policy). *)
let determinacy_races (sp, s_aware) (cp, c_aware) =
  match Fp.relate sp cp with
  | Fp.Serial _ -> false
  | Fp.Parallel { a_before_b; earlier_entry_rid } ->
      let later_rid, later_aware =
        if a_before_b then (cp.Fp.p_rid, c_aware) else (sp.Fp.p_rid, s_aware)
      in
      (not later_aware) || earlier_entry_rid <> later_rid

(* Peer-Set rule (Lemma 3): two reads have the same peer set iff they
   have the same serial spawn count and neither is in a P bag relative
   to the other. SP-parallel implies P-bag membership, and a spawn-count
   mismatch is racy outright; what we drop is the remaining bag case (an
   SP-serial pair whose earlier read sits in a returned spawned subtree
   yet whose counts coincide) — an under-approximation, so no false
   positives. Both kept tests are arrival-order independent: counts by
   the connected-compare-graph argument, parallelism because detection
   order is a linear extension of the SP order (a read executes only
   after all its SP predecessors), so the first completed parallel pair
   always has one endpoint retained as the serial max. *)
let peer_races (sp, ssc) (cp, csc) =
  match Fp.relate sp cp with
  | Fp.Parallel _ -> true
  | Fp.Serial _ -> ssc <> csc

let shadow_read rt loc pt aware ep =
  with_slot rt.dshadow loc
    ~fresh:(fun () -> { w = None; rmin = None; rmax = None })
    (fun s ->
      (match s.w with
      | Some (wp, w_aware, w_ep) when determinacy_races (wp, w_aware) (pt, aware)
        ->
          report_determinacy rt loc ~first:w_ep ~first_access:Report.Write
            ~second:ep ~second_access:Report.Read ~second_aware:aware
      | _ -> ());
      (match s.rmin with
      | None -> s.rmin <- Some (pt, aware, ep)
      | Some (m, _, _) ->
          if Fp.serial_before pt m then s.rmin <- Some (pt, aware, ep));
      match s.rmax with
      | None -> s.rmax <- Some (pt, aware, ep)
      | Some (m, _, _) ->
          if Fp.serial_before m pt then s.rmax <- Some (pt, aware, ep))

let shadow_write rt loc pt aware ep =
  with_slot rt.dshadow loc
    ~fresh:(fun () -> { w = None; rmin = None; rmax = None })
    (fun s ->
      let races = function
        | Some (sp, s_aware, _) -> determinacy_races (sp, s_aware) (pt, aware)
        | None -> false
      in
      (* report against the first racing stored endpoint, writer first *)
      (match
         List.find_opt
           (fun (stored, _) -> races stored)
           [ (s.w, Report.Write); (s.rmin, Report.Read); (s.rmax, Report.Read) ]
       with
      | Some (Some (_, _, s_ep), first_access) ->
          report_determinacy rt loc ~first:s_ep ~first_access ~second:ep
            ~second_access:Report.Write ~second_aware:aware
      | _ -> ());
      match s.w with
      | None -> s.w <- Some (pt, aware, ep)
      | Some (wp, _, _) -> if Fp.serial_before wp pt then s.w <- Some (pt, aware, ep))

let peer_read rt reducer pt sc ep =
  with_slot rt.pshadow reducer
    ~fresh:(fun () -> { pmin = None; pmax = None })
    (fun s ->
      let races = function
        | Some (sp, ssc, _) -> peer_races (sp, ssc) (pt, sc)
        | None -> false
      in
      (match
         List.find_opt races [ s.pmin; s.pmax ] |> Option.join
       with
      | Some (_, _, s_ep) -> report_view_read rt reducer ~first:s_ep ~second:ep
      | None -> ());
      (match s.pmin with
      | None -> s.pmin <- Some (pt, sc, ep)
      | Some (m, _, _) -> if Fp.serial_before pt m then s.pmin <- Some (pt, sc, ep));
      match s.pmax with
      | None -> s.pmax <- Some (pt, sc, ep)
      | Some (m, _, _) -> if Fp.serial_before m pt then s.pmax <- Some (pt, sc, ep))

(* ---------- effects ---------- *)

type _ Effect.t +=
  | Spawned : (unit -> unit) -> unit Effect.t
        (* publish my continuation as a stealable task, then run the
           child (child-first discipline) *)
  | Park : ofr -> unit Effect.t
        (* suspend until the frame's last outstanding child returns *)

(* Run a fresh computation under the scheduler's handler. Continuation
   tasks are resumed bare ([Effect.Deep.continue]): deep handlers travel
   with the continuation, so their effects and exceptions still land
   here. *)
let run_comp rt (f : unit -> unit) : unit =
  Effect.Deep.match_with f ()
    {
      retc = (fun () -> ());
      exnc = (fun e -> contain rt e);
      effc =
        (fun (type b) (eff : b Effect.t) ->
          match eff with
          | Spawned child ->
              Some
                (fun (k : (b, unit) Effect.Deep.continuation) ->
                  push_my rt (fun () -> Effect.Deep.continue k ());
                  child ())
          | Park fr ->
              Some
                (fun (k : (b, unit) Effect.Deep.continuation) ->
                  Mutex.lock fr.lock;
                  if fr.outstanding = 0 then begin
                    Mutex.unlock fr.lock;
                    Effect.Deep.continue k ()
                  end
                  else begin
                    fr.parked <- Some (fun () -> Effect.Deep.continue k ());
                    Mutex.unlock fr.lock;
                    Atomic.incr rt.n_parks;
                    if Obs.enabled () then Obs.bump_online_park ()
                  end)
          | _ -> None);
    }

let child_done rt parent =
  Mutex.lock parent.lock;
  parent.outstanding <- parent.outstanding - 1;
  let resume =
    if parent.outstanding = 0 then (
      let p = parent.parked in
      parent.parked <- None;
      p)
    else None
  in
  Mutex.unlock parent.lock;
  match resume with Some tk -> push_my rt tk | None -> ()

(* ---------- region merging (at-sync policy) ---------- *)

(* Fold the steal-opened regions back into the frame's entry region,
   newest first — the same merge order as the serial engine's repeated
   [merge_top_two] at a sync. Runs on the frame's executor after every
   child has joined, so the regions involved have no other owner. *)
let merge_regions rt ctx fr =
  let do_merge ~from ~into =
    fr.region <- into;
    let closures =
      Mutex.lock rt.merges_mu;
      let l = Dynarr.to_list rt.merges in
      Mutex.unlock rt.merges_mu;
      l
    in
    List.iter
      (fun merge -> merge ctx ~from_region:from.orid ~into_region:into.orid)
      closures;
    Hashtbl.reset from.oviews
  in
  let rec go = function
    | [] -> ()
    | [ r1 ] -> do_merge ~from:r1 ~into:fr.base
    | r1 :: (r2 :: _ as rest) ->
        do_merge ~from:r1 ~into:r2;
        go rest
  in
  fr.in_merge <- true;
  Fun.protect
    ~finally:(fun () -> fr.in_merge <- false)
    (fun () -> go fr.opens);
  fr.opens <- [];
  fr.region <- fr.base

let frame_sync rt ctx fr =
  bump rt;
  Mutex.lock fr.lock;
  let pending = fr.outstanding > 0 in
  Mutex.unlock fr.lock;
  if pending then Effect.perform (Park fr);
  merge_regions rt ctx fr;
  (* the serial engine allocates a sync strand unconditionally, after the
     merge reduces *)
  Dynarr.push fr.items It_sync;
  fr.block <- fr.block + 1;
  fr.ls <- 0

(* ---------- DSL operations ---------- *)

let user_ctx rt fr =
  Engine.online_ctx rt.eng
    (Obj.repr { fr; aux_kind = Tool.User_fn; aux_item = -1 })

let require_user o what =
  if o.aux_kind <> Tool.User_fn then
    err "%s is not allowed inside view-aware (update/reduce/identity) code" what

(* Run [f] as a child User_fn frame of [child], including the implicit
   sync, fill its future, then run [after] (join bookkeeping for stolen
   children, nothing for inline ones). *)
let child_main rt child fut f ~after =
  bump rt;
  let cctx = user_ctx rt child in
  let v = f cctx in
  frame_sync rt cctx child;
  Engine.online_future_fill fut v;
  after ()

let spawn_impl : type a. rt -> Engine.ctx -> (Engine.ctx -> a) -> a Engine.future =
 fun rt ctx f ->
  let o = ost_of ctx in
  require_user o "spawn";
  let fr = o.fr in
  bump rt;
  let ord = fr.nuser in
  fr.nuser <- ord + 1;
  let sord = fr.nspawns in
  fr.nspawns <- sord + 1;
  fr.ls <- fr.ls + 1;
  let seq = fr.seq in
  fr.seq <- seq + 1;
  let entry_region = fr.region in
  let cum_entry = fr.cum_entry + fr.nspawns in
  (* A spawned child's entry count includes its own spawn (Peer-Set's
     [anc] is read after the parent's [ls] bump). *)
  let sc_entry = fr.sc_entry + fr.ls in
  let rs =
    Fp.child fr.rs ~ord ~spawned:true ~block:fr.block ~seq
      ~rid_entry:entry_region.orid ~cum_entry
  in
  let child =
    mk_frame rt ~rs ~cum_entry ~sc_entry ~region:entry_region
      ~rpath:(ord :: fr.rpath)
      ~phash:(child_phash fr.phash ord)
  in
  Dynarr.push fr.items (It_user child);
  let fut = Engine.online_future_make ~owner:fr.fid ~born_block:fr.block in
  if steal_decision rt fr sord then begin
    Mutex.lock rt.trace_mu;
    Dynarr.push rt.trace
      { Steal_trace.e_path = List.rev fr.rpath; e_ord = sord };
    Mutex.unlock rt.trace_mu;
    Atomic.incr rt.n_struct;
    Mutex.lock fr.lock;
    fr.outstanding <- fr.outstanding + 1;
    Mutex.unlock fr.lock;
    (* The continuation resumes in a fresh region, exactly as if stolen:
       switch the frame's region before publishing the continuation. *)
    let nr = fresh_region rt in
    fr.opens <- nr :: fr.opens;
    fr.region <- nr;
    Effect.perform
      (Spawned
         (fun () ->
           run_comp rt (fun () ->
               child_main rt child fut f ~after:(fun () -> child_done rt fr))))
  end
  else
    (* Not stolen: the child runs to completion on this worker before the
       continuation — its parks suspend the whole serial chain, which is
       the continuation's serial position anyway. *)
    child_main rt child fut f ~after:(fun () -> ());
  fut

let call_impl : type a. rt -> Engine.ctx -> (Engine.ctx -> a) -> a =
 fun rt ctx f ->
  let o = ost_of ctx in
  require_user o "call";
  let fr = o.fr in
  bump rt;
  let ord = fr.nuser in
  fr.nuser <- ord + 1;
  let seq = fr.seq in
  fr.seq <- seq + 1;
  let cum_entry = fr.cum_entry + fr.nspawns in
  let sc_entry = fr.sc_entry + fr.ls in
  let rs =
    Fp.child fr.rs ~ord ~spawned:false ~block:fr.block ~seq
      ~rid_entry:fr.region.orid ~cum_entry
  in
  let child =
    mk_frame rt ~rs ~cum_entry ~sc_entry ~region:fr.region
      ~rpath:(ord :: fr.rpath)
      ~phash:(child_phash fr.phash ord)
  in
  Dynarr.push fr.items (It_user child);
  bump rt;
  let cctx = user_ctx rt child in
  let v = f cctx in
  frame_sync rt cctx child;
  v

let get_impl : type a. rt -> Engine.ctx -> a Engine.future -> a =
 fun _rt ctx fut ->
  let o = ost_of ctx in
  if o.fr.fid <> Engine.future_owner fut then
    err "future read from a frame other than the spawning one";
  if o.fr.block <= Engine.future_born_block fut then
    err "future read before sync (the spawned child may still be running)";
  match Engine.online_future_peek fut with
  | Some v -> v
  | None -> err "future has no value"

let sync_impl rt ctx =
  let o = ost_of ctx in
  require_user o "sync";
  frame_sync rt ctx o.fr

let run_aux_impl : type a.
    rt -> reducer:int -> Engine.ctx -> Tool.frame_kind -> (Engine.ctx -> a) -> a
    =
 fun rt ~reducer:_ ctx kind f ->
  let o = ost_of ctx in
  bump rt;
  let fr = o.fr in
  let idx = Dynarr.length fr.items in
  (* a reduce inside a sync-time merge does not continue the frame's
     strand afterwards (serial [in_reduce]); everything else does *)
  Dynarr.push fr.items
    (It_aux { continue = not (kind = Tool.Reduce_fn && fr.in_merge) });
  f (Engine.online_ctx rt.eng (Obj.repr { fr; aux_kind = kind; aux_item = idx }))

let emit_read_impl rt ctx loc =
  let o = ost_of ctx in
  bump rt;
  match o.aux_kind with
  | Tool.Reduce_fn -> ()
  | k -> shadow_read rt loc (point_of o) (k <> Tool.User_fn) (ep_of o)

let emit_write_impl rt ctx loc =
  let o = ost_of ctx in
  bump rt;
  match o.aux_kind with
  | Tool.Reduce_fn -> ()
  | k -> shadow_write rt loc (point_of o) (k <> Tool.User_fn) (ep_of o)

let emit_reducer_read_impl rt ctx red =
  let o = ost_of ctx in
  bump rt;
  if o.aux_kind = Tool.User_fn then
    peer_read rt red (point_of o) (o.fr.sc_entry + o.fr.ls) (ep_of o)

let register_reducer_impl rt ~merge =
  Mutex.lock rt.merges_mu;
  let id = Dynarr.length rt.merges in
  Dynarr.push rt.merges merge;
  Mutex.unlock rt.merges_mu;
  id

let alloc_locs_impl rt ~label n =
  Mutex.lock rt.alloc_mu;
  let base = Engine.raw_alloc_locs rt.eng ~label n in
  Mutex.unlock rt.alloc_mu;
  base

(* Resolve a region id against the frame's reachable regions: its current
   region, its entry region, and its steal-opened regions. Merge closures
   only ever name regions of the frame performing the sync, and ordinary
   reducer operations name the current region, so this never needs a
   global table. *)
let region_lookup (o : ost) rid =
  let fr = o.fr in
  if fr.region.orid = rid then fr.region
  else if fr.base.orid = rid then fr.base
  else
    match List.find_opt (fun r -> r.orid = rid) fr.opens with
    | Some r -> r
    | None -> err "view region %d is not reachable from the current frame" rid

(* ---------- worker loop ---------- *)

let exec rt task =
  Atomic.incr rt.n_tasks;
  if Obs.enabled () then Obs.bump_online_task ();
  task ()

let stopped rt = Atomic.get rt.finished || Atomic.get rt.cancel

let worker rt w first =
  Domain.DLS.set wid_key w;
  (match first with Some tk -> exec rt tk | None -> ());
  (* Victim choice only affects placement, never the verdict. *)
  let rng = Rader_support.Rng.create (rt.cfg.seed + (w * 7919) + 1) in
  let p = Array.length rt.deques in
  while not (stopped rt) do
    match Ws_deque.pop rt.deques.(w) with
    | Some tk -> exec rt tk
    | None ->
        if p > 1 then begin
          let v = (w + 1 + Rader_support.Rng.int rng (p - 1)) mod p in
          match Ws_deque.steal rt.deques.(v) with
          | Some tk ->
              Atomic.incr rt.n_deque_steals;
              if Obs.enabled () then Obs.bump_online_deque_steal ();
              exec rt tk
          | None -> Domain.cpu_relax ()
        end
        else Domain.cpu_relax ()
  done

(* ---------- endpoint attribution ---------- *)

(* Replay the serial engine's frame/strand numbering over the recorded
   item skeleton. The serial engine allocates frame ids in creation
   (preorder) order and strand ids in execution order, with fixed rules:
   every frame gets an "enter" strand on entry; a user child's whole
   subtree (ending in its implicit sync strand) precedes a "cont" strand
   on the parent; an auxiliary frame consumes a fresh frame id plus one
   strand, then a "cont" strand unless it was a reduce inside a merge;
   every sync allocates one strand after its merge reduces. A depth-first
   walk applying those rules to [items] therefore reproduces the exact
   ids a serial replay of the recorded steal trace assigns (trace replays
   use the at-sync reduce policy, so no merges happen at steal time). *)
type serial_ids = {
  si_fids : (int, int) Hashtbl.t;  (* online fid -> serial fid *)
  si_segs : (int, int array) Hashtbl.t;
      (* online fid -> strand after k recorded items, k = 0..n *)
  si_auxs : (int * int, int * int) Hashtbl.t;
      (* (online fid, item index) -> aux (serial fid, strand) *)
}

let resolve_serial_ids root =
  let next_fid = ref 0 and next_strand = ref 0 in
  let fresh r =
    let v = !r in
    incr r;
    v
  in
  let ids =
    {
      si_fids = Hashtbl.create 64;
      si_segs = Hashtbl.create 64;
      si_auxs = Hashtbl.create 16;
    }
  in
  let rec dfs fr =
    Hashtbl.replace ids.si_fids fr.fid (fresh next_fid);
    let n = Dynarr.length fr.items in
    let seg = Array.make (n + 1) 0 in
    seg.(0) <- fresh next_strand;
    (* "enter" / root "main" *)
    for i = 0 to n - 1 do
      seg.(i + 1) <-
        (match Dynarr.get fr.items i with
        | It_user child ->
            dfs child;
            fresh next_strand (* "cont" *)
        | It_aux { continue } ->
            let afid = fresh next_fid in
            let astrand = fresh next_strand in
            Hashtbl.replace ids.si_auxs (fr.fid, i) (afid, astrand);
            if continue then fresh next_strand else seg.(i)
        | It_sync -> fresh next_strand (* "sync" *))
    done;
    Hashtbl.replace ids.si_segs fr.fid seg
  in
  dfs root;
  ids

let ep_ids ids ep =
  if ep.ep_aux then Hashtbl.find_opt ids.si_auxs (ep.ep_fr.fid, ep.ep_item)
  else
    match
      ( Hashtbl.find_opt ids.si_fids ep.ep_fr.fid,
        Hashtbl.find_opt ids.si_segs ep.ep_fr.fid )
    with
    | Some f, Some seg when ep.ep_item < Array.length seg ->
        Some (f, seg.(ep.ep_item))
    | _ -> None

let base_detail = function
  | Report.Determinacy_race ->
      "online: structurally parallel accesses, at least one a write"
  | Report.View_read_race -> "online: reducer-reads with different peer sets"

let resolve_report ids p =
  let detail = base_detail p.pr_kind in
  let first_frame, second_frame, second_strand, detail =
    match (ep_ids ids p.pr_first, ep_ids ids p.pr_second) with
    | Some (ff, _), Some (sf, ss) -> (ff, sf, ss, detail)
    | _ -> (-1, -1, -1, detail ^ " (endpoints not attributed)")
  in
  {
    Report.kind = p.pr_kind;
    subject = p.pr_subject;
    subject_label = p.pr_label;
    first_frame;
    first_access = p.pr_first_access;
    second_frame;
    second_access = p.pr_second_access;
    second_strand;
    second_view_aware = p.pr_second_aware;
    detail;
  }

(* ---------- entry point ---------- *)

let race_summary races =
  let subjects kind =
    List.filter_map
      (fun r -> if r.Report.kind = kind then Some r.Report.subject else None)
      races
    |> List.sort_uniq compare |> List.map string_of_int |> String.concat ";"
  in
  Printf.sprintf "determinacy=[%s] view-read=[%s]"
    (subjects Report.Determinacy_race)
    (subjects Report.View_read_race)

let run cfg program =
  if cfg.workers < 1 then invalid_arg "Online.run: workers must be >= 1";
  if not (cfg.density >= 0. && cfg.density <= 1.) then
    invalid_arg "Online.run: density must be in [0, 1]";
  if cfg.reach <> Rader_reach.Reach.Depa then
    invalid_arg
      "Online.run: the dset backend is serially anchored (replay-only); \
       online detection requires --reach depa";
  let n_stripes = stripe_count cfg in
  let eng = Engine.create () in
  let rt =
    {
      eng;
      cfg;
      clock = (match cfg.clock with Some c -> c | None -> Unix.gettimeofday);
      deques = Array.init cfg.workers (fun _ -> Ws_deque.create ());
      finished = Atomic.make false;
      cancel = Atomic.make false;
      fail_mu = Mutex.create ();
      failure = None;
      result = Atomic.make None;
      events = Atomic.make 0;
      next_fid = Atomic.make 0;
      next_rid = Atomic.make 0;
      merges_mu = Mutex.create ();
      merges = Dynarr.create ();
      alloc_mu = Mutex.create ();
      dshadow = stripes n_stripes;
      pshadow = stripes n_stripes;
      races_mu = Mutex.create ();
      protos = Dynarr.create ();
      seen = Hashtbl.create 8;
      trace_mu = Mutex.create ();
      trace = Dynarr.create ();
      n_struct = Atomic.make 0;
      n_tasks = Atomic.make 0;
      n_deque_steals = Atomic.make 0;
      n_parks = Atomic.make 0;
    }
  in
  Engine.set_online eng
    {
      Engine.oo_spawn = (fun ctx f -> spawn_impl rt ctx f);
      oo_get = (fun ctx fut -> get_impl rt ctx fut);
      oo_sync = (fun ctx -> sync_impl rt ctx);
      oo_call = (fun ctx f -> call_impl rt ctx f);
      oo_run_aux = (fun ~reducer ctx kind f -> run_aux_impl rt ~reducer ctx kind f);
      oo_emit_read = (fun ctx loc -> emit_read_impl rt ctx loc);
      oo_emit_write = (fun ctx loc -> emit_write_impl rt ctx loc);
      oo_emit_reducer_read = (fun ctx red -> emit_reducer_read_impl rt ctx red);
      oo_register_reducer = (fun ~merge -> register_reducer_impl rt ~merge);
      oo_alloc_locs = (fun ~label n -> alloc_locs_impl rt ~label n);
      oo_current_region = (fun ctx -> (ost_of ctx).fr.region.orid);
      oo_current_frame = (fun ctx -> (ost_of ctx).fr.fid);
      oo_view_find =
        (fun ctx ~region ~reducer ->
          let o = ost_of ctx in
          let r = region_lookup o region in
          Hashtbl.find_opt r.oviews reducer);
      oo_view_set =
        (fun ctx ~region ~reducer v ->
          let o = ost_of ctx in
          let r = region_lookup o region in
          Hashtbl.replace r.oviews reducer v);
    };
  let base = fresh_region rt in
  let root =
    mk_frame rt ~rs:(Fp.root ()) ~cum_entry:0 ~sc_entry:0 ~region:base
      ~rpath:[] ~phash:0
  in
  let root_task () =
    run_comp rt (fun () ->
        let ctx = user_ctx rt root in
        let v = program ctx in
        frame_sync rt ctx root;
        Atomic.set rt.result (Some v);
        Atomic.set rt.finished true)
  in
  let obs_on = Obs.enabled () in
  let merged = if obs_on then Some (Obs.zero ()) else None in
  let merge_mu = Mutex.create () in
  let body w first () =
    let snap = if obs_on then Some (Obs.snapshot ()) else None in
    worker rt w first;
    match (snap, merged) with
    | Some snap, Some into ->
        let delta = Obs.since snap in
        Mutex.lock merge_mu;
        Obs.add ~into delta;
        Mutex.unlock merge_mu
    | _ -> ()
  in
  let others =
    Array.init (cfg.workers - 1) (fun i ->
        Domain.spawn (fun () -> body (i + 1) None ()))
  in
  body 0 (Some root_task) ();
  Array.iter Domain.join others;
  Engine.clear_online eng;
  let value =
    match rt.failure with
    | Some f -> Error f
    | None -> (
        match Atomic.get rt.result with
        | Some v -> Ok v
        | None ->
            Error
              (Fault.Engine_invariant
                 {
                   what = "online run finished without a result";
                   origin = origin_of rt;
                 }))
  in
  let races =
    let protos = Dynarr.to_list rt.protos in
    let resolved =
      if protos = [] then []
      else
        (* all workers have joined: the item skeleton is complete and
           quiescent, so the numbering walk needs no locks *)
        let ids = resolve_serial_ids root in
        List.map (resolve_report ids) protos
    in
    List.sort
      (fun a b ->
        match compare a.Report.kind b.Report.kind with
        | 0 -> compare a.Report.subject b.Report.subject
        | c -> c)
      resolved
  in
  {
    value;
    races;
    trace =
      Steal_trace.make ~workers:cfg.workers ~seed:cfg.seed ~density:cfg.density
        (Dynarr.to_list rt.trace);
    n_structural_steals = Atomic.get rt.n_struct;
    n_tasks = Atomic.get rt.n_tasks;
    n_deque_steals = Atomic.get rt.n_deque_steals;
    n_parks = Atomic.get rt.n_parks;
    events = Atomic.get rt.events;
    counters = merged;
  }
