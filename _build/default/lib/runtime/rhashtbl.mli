(** Instrumented hash tables: fixed-bucket separate chaining with every
    bucket in a shadow-tracked {!Cell}.

    Supports dictionary-style user-defined reducers (word counts,
    key→value aggregations): {!merge_into} is the Reduce, folding one
    table's bindings into another with a user combiner for duplicate
    keys, with every bucket access instrumented — so a buggy dictionary
    monoid (say, one whose views share buckets after a shallow copy, like
    the paper's Figure-1 list) produces real detectable shadow traffic.

    The bucket count is fixed at creation (no rehashing); use a
    generous [buckets] for large tables. *)

type ('k, 'v) t

(** [create ctx ~buckets ()] is an empty table; allocation untracked. *)
val create : Engine.ctx -> buckets:int -> unit -> ('k, 'v) t

(** [add ctx h k v ~combine] inserts [k → v], combining with [combine
    old_v v] when [k] is already bound. Instrumented bucket
    read/write. *)
val add : Engine.ctx -> ('k, 'v) t -> 'k -> 'v -> combine:('v -> 'v -> 'v) -> unit

(** [find ctx h k] is the binding of [k], if any. Instrumented read. *)
val find : Engine.ctx -> ('k, 'v) t -> 'k -> 'v option

(** [size ctx h] is the number of bindings (instrumented). *)
val size : Engine.ctx -> ('k, 'v) t -> int

(** [bindings ctx h] is all bindings, sorted by key (instrumented scan;
    polymorphic compare on keys). *)
val bindings : Engine.ctx -> ('k, 'v) t -> ('k * 'v) list

(** [merge_into ctx ~dst ~src ~combine] folds every binding of [src] into
    [dst] — the dictionary Reduce. [src] is left unchanged. *)
val merge_into :
  Engine.ctx -> dst:('k, 'v) t -> src:('k, 'v) t -> combine:('v -> 'v -> 'v) -> unit

(** [peek_bindings h] is the sorted bindings without instrumentation. *)
val peek_bindings : ('k, 'v) t -> ('k * 'v) list

(** [monoid ~buckets ~combine ()] is the dictionary reducer monoid:
    identity = fresh empty table, reduce = [merge_into] left. *)
val monoid : buckets:int -> combine:('v -> 'v -> 'v) -> unit -> ('k, 'v) t Reducer.monoid
