(** Recorded executions as first-class values, with a text serialization.

    A trace captures everything the offline analyses need from one
    instrumented run: the performance dag, the access log, the
    region-merge log, the reducer-read log, the spawn log and the
    location labels. Traces support a "record once, analyze many" flow —
    run the program with [~record:true], {!save} the trace, then run the
    brute-force oracles (or visualization) later without re-executing:

    {v rader record pbfs -o pbfs.trace && rader oracle pbfs.trace v}

    The format is a line-oriented UTF-8 text format, versioned by its
    header line. *)

type t = {
  dag : Rader_dag.Dag.t;
  accesses : Rader_runtime.Engine.access list;  (** serial order *)
  merges : Rader_runtime.Engine.merge_rec list;  (** serial order *)
  reducer_reads : (int * int) list;  (** (reducer, strand), serial order *)
  spawns : (int * int * int) list;
      (** (spawn index, spawn strand, continuation strand) *)
  frames : (int * int * bool * Rader_runtime.Tool.frame_kind) list;
      (** (frame, parent, spawned, kind) in creation order; parent = -1 at
          the root *)
  loc_labels : (int * string) list;  (** labels of locations that appear *)
}

(** [of_engine eng] extracts the trace of a recorded run.
    @raise Invalid_argument if the engine was not created with
    [~record:true]. *)
val of_engine : Rader_runtime.Engine.t -> t

(** [loc_label t loc] is the recorded label ("?" if unknown). *)
val loc_label : t -> int -> string

(** [save t path] writes the trace. *)
val save : t -> string -> unit

(** [load path] reads a trace back.
    @raise Failure on malformed input or version mismatch. *)
val load : string -> t

(** [equal a b] is structural equality (for round-trip tests). *)
val equal : t -> t -> bool

(** [sp_tree t] reconstructs the canonical SP parse tree (paper §4,
    Fig. 4) of a {e serial} execution trace: per frame, sync strands
    partition the strands and child subtrees into sync blocks; blocks are
    chained by the S spine; a block item composes in parallel exactly when
    it is a spawned child's subtree. Leaves are the trace's strand ids.
    Only meaningful for traces recorded under [Steal_spec.none] (the user
    dag); @raise Invalid_argument if the trace contains reduce strands. *)
val sp_tree : t -> Rader_dag.Sp_tree.t
