(* Chase–Lev work-stealing deque (Chase & Lev, SPAA'05; Lê et al.,
   PPoPP'13) on OCaml 5 atomics, in the style of domainslib's ws_deque.

   One domain — the owner — pushes and pops at the bottom; any other
   domain steals from the top. [top] only ever increases (stealers and
   the owner's race-resolution CAS advance it); [bottom] is written only
   by the owner. The circular buffer holds one atomic cell per slot and
   is grown (owner-only) by installing a fresh buffer: in-flight stealers
   that loaded the old buffer still read correct values because the owner
   never overwrites an index smaller than the current [bottom] and the
   CAS on [top] decides ownership of each element exactly once. OCaml's
   [Atomic] operations are sequentially consistent, which is the memory
   model the textbook proof assumes. *)

type 'a buffer = { mask : int; cells : 'a option Atomic.t array }

let make_buffer cap =
  { mask = cap - 1; cells = Array.init cap (fun _ -> Atomic.make None) }

let buf_get buf i = Atomic.get buf.cells.(i land buf.mask)
let buf_set buf i v = Atomic.set buf.cells.(i land buf.mask) v

type 'a t = {
  top : int Atomic.t;
  bottom : int Atomic.t;
  buf : 'a buffer Atomic.t;
}

let create ?(capacity = 32) () =
  let cap = ref 1 in
  while !cap < capacity do
    cap := !cap * 2
  done;
  {
    top = Atomic.make 0;
    bottom = Atomic.make 0;
    buf = Atomic.make (make_buffer !cap);
  }

let size d =
  let b = Atomic.get d.bottom and t = Atomic.get d.top in
  max 0 (b - t)

let grow d ~top ~bottom =
  let old = Atomic.get d.buf in
  let nbuf = make_buffer (2 * (old.mask + 1)) in
  for i = top to bottom - 1 do
    buf_set nbuf i (buf_get old i)
  done;
  Atomic.set d.buf nbuf;
  nbuf

(* Owner only. *)
let push d v =
  let b = Atomic.get d.bottom in
  let t = Atomic.get d.top in
  let buf = Atomic.get d.buf in
  let buf = if b - t > buf.mask then grow d ~top:t ~bottom:b else buf in
  buf_set buf b (Some v);
  Atomic.set d.bottom (b + 1)

(* Owner only. LIFO end — the task most recently pushed. *)
let pop d =
  let b = Atomic.get d.bottom - 1 in
  Atomic.set d.bottom b;
  let t = Atomic.get d.top in
  if b < t then begin
    (* Empty: restore the canonical empty state. *)
    Atomic.set d.bottom t;
    None
  end
  else begin
    let buf = Atomic.get d.buf in
    let v = buf_get buf b in
    if b > t then begin
      buf_set buf b None;
      v
    end
    else begin
      (* Last element: race with stealers for it via the top CAS. *)
      let won = Atomic.compare_and_set d.top t (t + 1) in
      Atomic.set d.bottom (t + 1);
      if won then begin
        buf_set buf b None;
        v
      end
      else None
    end
  end

(* Any domain. FIFO end — the oldest task. *)
let steal d =
  let t = Atomic.get d.top in
  let b = Atomic.get d.bottom in
  if t >= b then None
  else begin
    let buf = Atomic.get d.buf in
    let v = buf_get buf t in
    if Atomic.compare_and_set d.top t (t + 1) then v else None
  end
