module Coverage = Rader_core.Coverage
module Report = Rader_core.Report
module Diag = Rader_core.Diag
module Steal_spec = Rader_runtime.Steal_spec
module Engine = Rader_runtime.Engine

(* The `rader verify` driver: symbolic whole-family verdict + replay
   confirmation of every witness. Soundness comes from running the actual
   sweep over exactly [Symbolic.replay_specs] — done by
   [Coverage.exhaustive_check ~symbolic:true], whose racy_locs/reports are
   byte-identical to the enumerated sweep by the relevance lemma — so the
   symbolic layer here only *explains* (witness pairs, certificates,
   spec-independence) and *accelerates* (skipped replays); it never
   decides a verdict a replay did not confirm. *)

type verdict =
  | Racy of {
      witness : string;  (** replay-confirmed witness spec name *)
      first_strand : int;
      second_strand : int;
      pair : string;  (** e.g. "write/write" *)
      always : bool;  (** racy on every spec of the family (R006) *)
    }
  | Clean of {
      cert : Coverage.certificate option;
          (** [None]: location only surfaced in replays (unscanned) *)
      cleared_by : int;  (** residual replays that also had to come back clean *)
    }

type row = { r_loc : int; r_label : string; r_verdict : verdict }

type t = {
  program : string;
  prof : Coverage.profile;
  n_specs : int;  (** full §7 family size *)
  n_replays : int;  (** spec replays actually run *)
  n_skipped : int;  (** specs eliminated symbolically *)
  n_residual : int;
  racy_locs : int list;  (** byte-identical to the enumerated sweep's *)
  reports : Report.t list;
  rows : row list;  (** ascending location *)
  spec_independent : int list;  (** R006 locations, ascending *)
  unconfirmed : int list;
      (** scan-claimed racy locations no replay confirmed — a symbolic
          over-approximation; the replayed verdict above stands *)
  truncated : bool;  (** pair scan blew its budget somewhere *)
  incomplete : (string * Diag.failure) list;
  complete : bool;
  res : Coverage.result;  (** the underlying sweep, for metrics/obs *)
}

let access_kind_str (a : Engine.access) =
  if a.Engine.a_is_write then "write" else "read"

let verify ?reach ?max_pairs ?jobs ?max_events ?deadline ?with_obs ~name
    program =
  match Ir.of_program program with
  | Error f -> Error f
  | Ok ir ->
      let res =
        Coverage.exhaustive_check ~symbolic:true ?max_pairs ?reach ?jobs
          ?max_events ?deadline ?with_obs program
      in
      let sym = Symbolic.analyze ?max_pairs ~prof:res.Coverage.prof ir in
      let crashed =
        List.filter_map
          (fun (n, _) -> if n = "profile" then None else Some n)
          res.Coverage.incomplete
      in
      (* R006: the scan's both-oblivious pair proves the race on every
         non-residual spec; the residual replays (minus crashed ones) are
         cross-checked to have elicited it too. *)
      let racy_everywhere loc =
        List.for_all
          (fun ((sp : Steal_spec.t), locs) ->
            List.mem sp.Steal_spec.name crashed || List.mem loc locs)
          res.Coverage.per_spec
      in
      let spec_independent =
        List.filter
          (fun loc -> List.mem loc res.Coverage.racy_locs && racy_everywhere loc)
          (Symbolic.always_racy_locs sym)
      in
      let unconfirmed =
        List.filter
          (fun loc -> not (List.mem loc res.Coverage.racy_locs))
          (Symbolic.racy_locs sym)
      in
      let label loc =
        match Ir.loc_label ir loc with
        | "" | "?" -> (
            match
              List.find_opt (fun r -> r.Report.subject = loc) res.Coverage.reports
            with
            | Some r -> r.Report.subject_label
            | None -> Printf.sprintf "loc%d" loc)
        | l -> l
      in
      let n_residual = List.length sym.Symbolic.residual in
      let scanned =
        List.map (fun (ls : Coverage.loc_scan) -> ls.Coverage.ls_loc)
          sym.Symbolic.scan.Coverage.scan_racy
        @ List.map fst sym.Symbolic.scan.Coverage.scan_clean
      in
      let all_locs =
        List.sort_uniq compare (scanned @ res.Coverage.racy_locs)
      in
      let rows =
        List.map
          (fun loc ->
            let verdict =
              if List.mem loc res.Coverage.racy_locs then
                let witness =
                  match Coverage.witness_spec res loc with
                  | Some sp -> sp.Steal_spec.name
                  | None -> "?" (* unreachable: racy locs come from per_spec *)
                in
                let first_strand, second_strand, pair =
                  match Symbolic.witness_pair sym loc with
                  | Some (x, y) ->
                      ( x.Engine.a_strand,
                        y.Engine.a_strand,
                        access_kind_str x ^ "/" ^ access_kind_str y )
                  | None -> (
                      (* steal-dependent: the witness endpoints live in the
                         replay's report, not the no-steal IR *)
                      match
                        List.find_opt
                          (fun r -> r.Report.subject = loc)
                          res.Coverage.reports
                      with
                      | Some r ->
                          ( -1,
                            r.Report.second_strand,
                            Report.access_str r.Report.first_access
                            ^ "/"
                            ^ Report.access_str r.Report.second_access )
                      | None -> (-1, -1, "?"))
                in
                Racy
                  {
                    witness;
                    first_strand;
                    second_strand;
                    pair;
                    always = List.mem loc spec_independent;
                  }
              else
                Clean
                  { cert = Symbolic.certificate sym loc; cleared_by = n_residual }
            in
            { r_loc = loc; r_label = label loc; r_verdict = verdict })
          all_locs
      in
      Ok
        {
          program = name;
          prof = res.Coverage.prof;
          n_specs = res.Coverage.n_specs;
          n_replays = res.Coverage.n_run;
          n_skipped = res.Coverage.n_skipped;
          n_residual;
          racy_locs = res.Coverage.racy_locs;
          reports = res.Coverage.reports;
          rows;
          spec_independent;
          unconfirmed;
          truncated = not (Symbolic.complete sym);
          incomplete = res.Coverage.incomplete;
          complete = res.Coverage.complete;
          res;
        }

(* ---------- renderers ---------- *)

let verdict_cells v =
  match v with
  | Racy { witness; first_strand; second_strand; pair; always } ->
      let detail =
        (if first_strand >= 0 then
           Printf.sprintf "strands %d vs %d (%s)" first_strand second_strand
             pair
         else Printf.sprintf "%s, steal-elicited" pair)
        ^ (if always then ", spec-independent [R006]" else "")
        ^ ", replay-confirmed"
      in
      ("racy", witness, detail)
  | Clean { cert; cleared_by } ->
      let base =
        match cert with
        | Some c -> Symbolic.certificate_string c
        | None -> "replays only"
      in
      let detail =
        if cleared_by = 0 then base ^ " (certified on every spec)"
        else Printf.sprintf "%s, cleared by %d residual replays" base cleared_by
      in
      ("clean", "-", detail)

let to_table t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "program: %s\n" t.program);
  Buffer.add_string buf
    (Printf.sprintf
       "family: %d specs (k=%d d=%d k_rel=%d), residual %d; replays %d, \
        skipped %d\n"
       t.n_specs t.prof.Coverage.k t.prof.Coverage.d t.prof.Coverage.k_rel
       t.n_residual t.n_replays t.n_skipped);
  if t.racy_locs = [] && not t.truncated && t.complete then begin
    Buffer.add_string buf
      (Printf.sprintf "race-free across %d specs, %d replays\n" t.n_specs
         t.n_replays);
    Buffer.add_string buf "racy locs:\n"
  end
  else begin
    let rows_txt =
      ("LOC", "LABEL", "VERDICT", "WITNESS", "DETAIL")
      :: List.map
           (fun r ->
             let v, w, d = verdict_cells r.r_verdict in
             (string_of_int r.r_loc, r.r_label, v, w, d))
           t.rows
    in
    let w sel =
      List.fold_left (fun m r -> max m (String.length (sel r))) 0 rows_txt
    in
    let w1 = w (fun (a, _, _, _, _) -> a)
    and w2 = w (fun (_, b, _, _, _) -> b)
    and w3 = w (fun (_, _, c, _, _) -> c)
    and w4 = w (fun (_, _, _, d, _) -> d) in
    List.iter
      (fun (a, b, c, d, e) ->
        Buffer.add_string buf
          (Printf.sprintf "%-*s  %-*s  %-*s  %-*s  %s\n" w1 a w2 b w3 c w4 d e))
      rows_txt;
    Buffer.add_string buf
      (Printf.sprintf "racy locs:%s\n"
         (String.concat ""
            (List.map (fun l -> " " ^ string_of_int l) t.racy_locs)))
  end;
  if t.truncated then
    Buffer.add_string buf
      "note: pair scan truncated; no-steal replay kept (verdict sound, \
       symbolic detail partial)\n";
  List.iter
    (fun loc ->
      Buffer.add_string buf
        (Printf.sprintf
           "warning: symbolic claim on loc %d unconfirmed by replay; replayed \
            verdict stands\n"
           loc))
    t.unconfirmed;
  List.iter
    (fun (spec, f) ->
      Buffer.add_string buf
        (Printf.sprintf "incomplete: %s — %s\n" spec (Diag.to_string f)))
    t.incomplete;
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"program\":\"%s\",\"n_specs\":%d,\"n_replays\":%d,\"n_skipped\":%d,\
        \"n_residual\":%d,\"complete\":%b,\"truncated\":%b,"
       (json_escape t.program) t.n_specs t.n_replays t.n_skipped t.n_residual
       t.complete t.truncated);
  Buffer.add_string buf
    (Printf.sprintf "\"racy_locs\":[%s],"
       (String.concat "," (List.map string_of_int t.racy_locs)));
  Buffer.add_string buf
    (Printf.sprintf "\"spec_independent\":[%s],"
       (String.concat "," (List.map string_of_int t.spec_independent)));
  Buffer.add_string buf
    (Printf.sprintf "\"unconfirmed\":[%s],"
       (String.concat "," (List.map string_of_int t.unconfirmed)));
  Buffer.add_string buf "\"locs\":[";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char buf ',';
      let v, w, d = verdict_cells r.r_verdict in
      Buffer.add_string buf
        (Printf.sprintf
           "{\"loc\":%d,\"label\":\"%s\",\"verdict\":\"%s\",\"witness\":\"%s\",\
            \"detail\":\"%s\"}"
           r.r_loc (json_escape r.r_label) v (json_escape w) (json_escape d)))
    t.rows;
  Buffer.add_string buf "],";
  Buffer.add_string buf
    (Printf.sprintf "\"incomplete\":[%s]}"
       (String.concat ","
          (List.map
             (fun (spec, f) ->
               Printf.sprintf "{\"spec\":\"%s\",\"failure\":\"%s\"}"
                 (json_escape spec)
                 (json_escape (Diag.to_string f)))
             t.incomplete)));
  Buffer.contents buf
