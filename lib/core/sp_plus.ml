module Engine = Rader_runtime.Engine
module Tool = Rader_runtime.Tool
module Bag = Rader_dsets.Bag
module Shadow = Rader_memory.Shadow
module Dynarr = Rader_support.Dynarr

type bag_kind = KS | KP

type payload = { bkind : bag_kind; vid : int }

type fstate = {
  fid : int;
  fkind : Tool.frame_kind;
  s : payload Bag.t;
  pstack : payload Bag.t Dynarr.t;
}

type t = {
  eng : Engine.t;
  store : payload Bag.store;
  stack : fstate Dynarr.t;
  reader : Shadow.t;
  writer : Shadow.t;
  collector : Report.collector;
}

let create eng =
  {
    eng;
    store = Bag.create_store ();
    stack = Dynarr.create ();
    reader = Shadow.create ();
    writer = Shadow.create ();
    collector = Report.collector ();
  }

let top d = Dynarr.top d.stack

let top_vid f = (Bag.payload (Dynarr.top f.pstack)).vid

let on_frame_enter d ~frame ~kind =
  (* Fig. 6, "F spawns or calls G": G's S bag and initial P bag inherit the
     view ID of F's top P bag (0 for the root frame). *)
  let vid = if Dynarr.is_empty d.stack then 0 else top_vid (top d) in
  let s = Bag.make d.store { bkind = KS; vid } [ frame ] in
  let pstack = Dynarr.create () in
  Dynarr.push pstack (Bag.make d.store { bkind = KP; vid } []);
  Dynarr.push d.stack { fid = frame; fkind = kind; s; pstack }

let on_frame_return d ~frame ~spawned =
  let g = Dynarr.pop d.stack in
  assert (g.fid = frame);
  if not (Dynarr.is_empty d.stack) then begin
    let f = top d in
    (* G has synced: its P stack holds a single empty bag; only G.S moves.
       A returning Reduce invocation joins the P bag whose views it just
       merged (it is in series with those descendants but parallel to the
       sync block's later regions, paper §6); spawned children join the
       top P bag; called children are serial with F. *)
    if g.fkind = Tool.Reduce_fn || spawned then
      Bag.union_into d.store ~dst:(Dynarr.top f.pstack) ~src:g.s
    else Bag.union_into d.store ~dst:f.s ~src:g.s
  end

let on_sync d ~frame =
  let f = top d in
  assert (f.fid = frame);
  assert (Dynarr.length f.pstack = 1);
  let p = Dynarr.pop f.pstack in
  Bag.union_into d.store ~dst:f.s ~src:p;
  let svid = (Bag.payload f.s).vid in
  Dynarr.push f.pstack (Bag.make d.store { bkind = KP; vid = svid } [])

let on_steal d ~frame ~region =
  let f = top d in
  assert (f.fid = frame);
  Dynarr.push f.pstack (Bag.make d.store { bkind = KP; vid = region } [])

let on_reduce d ~frame ~into_region:_ ~from_region:_ =
  let f = top d in
  assert (f.fid = frame);
  let p = Dynarr.pop f.pstack in
  Bag.union_into d.store ~dst:(Dynarr.top f.pstack) ~src:p

(* Shadow-entry classification: the bag currently holding the recorded
   frame, if it is a P bag, together with its vid. *)
let find_bag d frame_id =
  if frame_id = Shadow.absent then None else Bag.find d.store frame_id

let report d ~loc ~first_frame ~first_access ~second_access ~frame ~view_aware ~detail =
  Report.report d.collector
    {
      Report.kind = Report.Determinacy_race;
      subject = loc;
      subject_label = Engine.loc_label d.eng loc;
      first_frame;
      first_access;
      second_frame = frame;
      second_access;
      second_strand = Engine.current_strand d.eng;
      second_view_aware = view_aware;
      detail;
    }

let on_read d ~frame ~loc ~view_aware =
  let f = top d in
  let w = Shadow.get d.writer loc in
  (match find_bag d w with
  | Some bag when (Bag.payload bag).bkind = KP ->
      if not view_aware then
        report d ~loc ~first_frame:w ~first_access:Report.Write
          ~second_access:Report.Read ~frame ~view_aware ~detail:""
      else begin
        let cur = top_vid f in
        let pv = (Bag.payload bag).vid in
        if pv <> cur then
          report d ~loc ~first_frame:w ~first_access:Report.Write
            ~second_access:Report.Read ~frame ~view_aware
            ~detail:(Printf.sprintf "parallel views %d vs %d" pv cur)
      end
  | _ -> ());
  (* Shadow update. *)
  let r = Shadow.get d.reader loc in
  let update =
    match find_bag d r with
    | None -> true
    | Some bag ->
        let p = Bag.payload bag in
        p.bkind = KS
        || (view_aware && f.fkind = Tool.Reduce_fn && p.vid = top_vid f)
  in
  if update then Shadow.set d.reader loc frame

let on_write d ~frame ~loc ~view_aware =
  let f = top d in
  let check ~first_frame ~first_access =
    match find_bag d first_frame with
    | Some bag when (Bag.payload bag).bkind = KP ->
        if not view_aware then
          report d ~loc ~first_frame ~first_access ~second_access:Report.Write
            ~frame ~view_aware ~detail:""
        else begin
          let cur = top_vid f in
          let pv = (Bag.payload bag).vid in
          if pv <> cur then
            report d ~loc ~first_frame ~first_access ~second_access:Report.Write
              ~frame ~view_aware
              ~detail:(Printf.sprintf "parallel views %d vs %d" pv cur)
        end
    | _ -> ()
  in
  check ~first_frame:(Shadow.get d.reader loc) ~first_access:Report.Read;
  check ~first_frame:(Shadow.get d.writer loc) ~first_access:Report.Write;
  let w = Shadow.get d.writer loc in
  let update =
    match find_bag d w with
    | None -> true
    | Some bag ->
        let p = Bag.payload bag in
        p.bkind = KS
        || (view_aware && f.fkind = Tool.Reduce_fn && p.vid = top_vid f)
  in
  if update then Shadow.set d.writer loc frame

let tool d =
  {
    Tool.on_frame_enter =
      (fun ~frame ~parent:_ ~spawned:_ ~kind -> on_frame_enter d ~frame ~kind);
    on_frame_return =
      (fun ~frame ~parent:_ ~spawned ~kind:_ -> on_frame_return d ~frame ~spawned);
    on_sync = (fun ~frame -> on_sync d ~frame);
    on_steal = (fun ~frame ~region -> on_steal d ~frame ~region);
    on_reduce =
      (fun ~frame ~into_region ~from_region ->
        on_reduce d ~frame ~into_region ~from_region);
    on_read = (fun ~frame ~loc ~view_aware -> on_read d ~frame ~loc ~view_aware);
    on_write = (fun ~frame ~loc ~view_aware -> on_write d ~frame ~loc ~view_aware);
    on_reducer_read = (fun ~frame:_ ~reducer:_ -> ());
  }

let attach eng =
  let d = create eng in
  Engine.set_tool eng (tool d);
  d

(* Recycle the detector alongside an [Engine.reset]: the bag store's
   union-find, the frame stack, both shadow spaces and the report
   collector are emptied but keep their grown arenas, and the detector
   re-arms itself as its engine's tool (the reset engine reverted to
   [Tool.null]). *)
let reset d =
  Bag.clear_store d.store;
  Dynarr.clear d.stack;
  Shadow.clear d.reader;
  Shadow.clear d.writer;
  Report.clear d.collector;
  Engine.set_tool d.eng (tool d)

let races d = Report.races d.collector

let found d = Report.count d.collector > 0

let racy_locs d = Report.racy_subjects d.collector
