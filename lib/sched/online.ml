open Rader_runtime
module Fp = Rader_reach.Reach.Fp
module Report = Rader_core.Report
module Steal_trace = Rader_core.Steal_trace
module Ws_deque = Rader_support.Ws_deque
module Dynarr = Rader_support.Dynarr
module Obs = Rader_obs.Obs

type config = {
  workers : int;
  seed : int;
  density : float;
  reach : Rader_reach.Reach.backend;
  max_events : int option;
  deadline : float option;
  clock : (unit -> float) option;
}

let default ?(workers = 2) ?(seed = 1) ?(density = 0.5) () =
  {
    workers;
    seed;
    density;
    reach = Rader_reach.Reach.Depa;
    max_events = None;
    deadline = None;
    clock = None;
  }

type outcome = {
  value : (int, Fault.failure) result;
  races : Report.t list;
  trace : Steal_trace.t;
  n_structural_steals : int;
  n_tasks : int;
  n_deque_steals : int;
  n_parks : int;
  events : int;
  counters : Obs.counters option;
}

(* Raised inside worker tasks once another worker has recorded the run's
   first failure: unwinds the task quietly, reported by nobody. *)
exception Cancelled

let err fmt = Printf.ksprintf (fun s -> raise (Engine.Cilk_error s)) fmt

(* ---------- runtime data structures ---------- *)

(* A view region. Created at root entry and at every structural steal;
   owns the reducer views that live in it ([reducer id -> view]). The
   Cilk view invariant gives single-owner access: at any moment exactly
   one serial chain of strands runs "in" a region, so its table needs no
   lock — region {e handoff} (spawn publication, sync join, merge) is
   ordered by the deque atomics and the frame lock. *)
type oregion = { orid : int; oviews : (int, Obj.t) Hashtbl.t }

(* One live user frame. Structural fields ([rs], [rpath], [phash],
   [cum_entry], [fid], [base]) are written once at creation; the mutable
   counters are only ever touched by the frame's current executor (frame
   bodies are a single logical thread even when their segments migrate
   across workers); [outstanding]/[parked] are the sync join state,
   guarded by [lock]. *)
type ofr = {
  fid : int;
  rs : Fp.frame;
  mutable seq : int;  (* per-frame child-creation counter *)
  mutable block : int;  (* current sync block *)
  mutable nuser : int;  (* user children created (spawn + call) *)
  mutable nspawns : int;  (* spawns performed, across blocks *)
  mutable ls : int;  (* spawns since the last sync (Peer-Set [ls]) *)
  cum_entry : int;  (* chain-spawn stamp at frame entry *)
  sc_entry : int;  (* serial spawn count at frame entry (Peer-Set [anc]) *)
  mutable region : oregion;  (* current view region *)
  base : oregion;  (* entry region: everything merges back here *)
  mutable opens : oregion list;  (* steal-opened regions, newest first *)
  lock : Mutex.t;
  mutable outstanding : int;  (* stolen children not yet returned *)
  mutable parked : (unit -> unit) option;  (* suspended sync resumption *)
  rpath : int list;  (* user-child ordinals, frame -> root (reversed) *)
  phash : int;  (* rolling structural hash of [rpath] *)
}

(* The [Obj.t] payload behind [Engine.ctx]: which frame, and whether we
   are inside a view-aware auxiliary callback of it. *)
type ost = { fr : ofr; aux_kind : Tool.frame_kind }

let ost_of ctx : ost = Obj.obj (Engine.ctx_ost ctx)

let point_of (o : ost) =
  let fr = o.fr in
  {
    Fp.p_frame = fr.rs;
    p_block = fr.block;
    p_seq = fr.seq;
    p_rid = fr.region.orid;
    p_cum = fr.cum_entry + fr.nspawns;
  }

(* ---------- lock-striped shadow spaces ---------- *)

let n_stripes = 64

(* Determinacy shadow: serially-last writer plus serially-least and
   -greatest readers per location. The SP-order retention lemma (if x is
   parallel to a dropped reader r with min <= r <= max in serial order,
   then x is parallel to min or to max) makes the racy-location set
   independent of the order workers reach the table. *)
type dslot = {
  mutable w : (Fp.point * bool) option;  (* point, view_aware *)
  mutable rmin : (Fp.point * bool) option;
  mutable rmax : (Fp.point * bool) option;
}

(* Peer-Set shadow: serially-least/-greatest reducer-read per reducer,
   each with its serial spawn count (the number of outstanding spawns on
   the reading frame's ancestor chain — Lemma 3's peer-set key). *)
type pslot = {
  mutable pmin : (Fp.point * int) option;
  mutable pmax : (Fp.point * int) option;
}

type 'slot stripes = { mus : Mutex.t array; tbls : (int, 'slot) Hashtbl.t array }

let stripes () =
  {
    mus = Array.init n_stripes (fun _ -> Mutex.create ());
    tbls = Array.init n_stripes (fun _ -> Hashtbl.create 64);
  }

let with_slot st key ~fresh f =
  let i = key land (n_stripes - 1) in
  Mutex.lock st.mus.(i);
  Fun.protect
    ~finally:(fun () -> Mutex.unlock st.mus.(i))
    (fun () ->
      let slot =
        match Hashtbl.find_opt st.tbls.(i) key with
        | Some s -> s
        | None ->
            let s = fresh () in
            Hashtbl.add st.tbls.(i) key s;
            s
      in
      f slot)

(* ---------- the runtime ---------- *)

type rt = {
  eng : Engine.t;
  cfg : config;
  clock : unit -> float;
  deques : (unit -> unit) Ws_deque.t array;
  finished : bool Atomic.t;
  cancel : bool Atomic.t;
  fail_mu : Mutex.t;
  mutable failure : Fault.failure option;  (* first failure wins *)
  result : int option Atomic.t;
  events : int Atomic.t;
  next_fid : int Atomic.t;
  next_rid : int Atomic.t;
  merges_mu : Mutex.t;
  merges : (Engine.ctx -> from_region:int -> into_region:int -> unit) Dynarr.t;
  alloc_mu : Mutex.t;
  dshadow : dslot stripes;
  pshadow : pslot stripes;
  races_mu : Mutex.t;
  races : Report.collector;
  trace_mu : Mutex.t;
  trace : Steal_trace.entry Dynarr.t;
  n_struct : int Atomic.t;
  n_tasks : int Atomic.t;
  n_deque_steals : int Atomic.t;
  n_parks : int Atomic.t;
}

let origin_of rt =
  {
    Fault.o_frame = -1;
    o_kind = Tool.User_fn;
    o_depth = -1;
    o_strand = -1;
    o_spec =
      Printf.sprintf "online(seed=%d,density=%g)" rt.cfg.seed rt.cfg.density;
  }

let record_failure rt f =
  Mutex.lock rt.fail_mu;
  if rt.failure = None then rt.failure <- Some f;
  Mutex.unlock rt.fail_mu;
  Atomic.set rt.cancel true

let contain rt = function
  | Cancelled -> ()
  | Fault.Stop b -> record_failure rt (Fault.Budget_exceeded b)
  | Engine.Cilk_error m ->
      record_failure rt (Fault.Engine_invariant { what = m; origin = origin_of rt })
  | e ->
      let backtrace = Printexc.get_backtrace () in
      record_failure rt
        (Fault.User_program_exn
           { exn = Printexc.to_string e; backtrace; origin = origin_of rt })

(* Global event budget: cancellation, event cap, deadline (checked every
   64 events, same cadence class as the serial engine's). *)
let bump rt =
  if Atomic.get rt.cancel then raise Cancelled;
  let n = 1 + Atomic.fetch_and_add rt.events 1 in
  (match rt.cfg.max_events with
  | Some m when n > m -> raise (Fault.Stop (Fault.Max_events m))
  | _ -> ());
  match rt.cfg.deadline with
  | Some dl when (n land 63 = 0 || n = 1) && rt.clock () > dl ->
      raise (Fault.Stop (Fault.Deadline dl))
  | _ -> ()

let fresh_region rt =
  { orid = Atomic.fetch_and_add rt.next_rid 1; oviews = Hashtbl.create 4 }

let mk_frame rt ~rs ~cum_entry ~sc_entry ~region ~rpath ~phash =
  {
    fid = Atomic.fetch_and_add rt.next_fid 1;
    rs;
    seq = 0;
    block = 0;
    nuser = 0;
    nspawns = 0;
    ls = 0;
    cum_entry;
    sc_entry;
    region;
    base = region;
    opens = [];
    lock = Mutex.create ();
    outstanding = 0;
    parked = None;
    rpath;
    phash;
  }

(* ---------- structural steal decisions ---------- *)

(* [Hashtbl.hash] is deterministic across runs and domains, which is all
   the decision needs; the victim-selection rng (placement only) is the
   seeded one. *)
let child_phash parent_phash ord = Hashtbl.hash (parent_phash, ord, 0x9e3779b9)

let steal_decision rt fr sord =
  let h = Hashtbl.hash (rt.cfg.seed, fr.phash, sord, 0x85ebca6b) land 0xffffff in
  float_of_int h < rt.cfg.density *. 16777216.

(* ---------- worker identity and task queue ---------- *)

let wid_key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> -1)

let push_my rt task =
  let w = Domain.DLS.get wid_key in
  Ws_deque.push rt.deques.(w) task

(* ---------- detection ---------- *)

let report_determinacy rt loc =
  Mutex.lock rt.races_mu;
  Report.report rt.races
    {
      Report.kind = Report.Determinacy_race;
      subject = loc;
      subject_label = Engine.loc_label rt.eng loc;
      first_frame = -1;
      first_access = Report.Write;
      second_frame = -1;
      second_access = Report.Write;
      second_strand = -1;
      second_view_aware = false;
      detail =
        "online: structurally parallel accesses, at least one a write \
         (endpoints not attributed; replay the steal trace serially for \
         them)";
    };
  Mutex.unlock rt.races_mu

let report_view_read rt reducer =
  Mutex.lock rt.races_mu;
  Report.report rt.races
    {
      Report.kind = Report.View_read_race;
      subject = reducer;
      subject_label = Printf.sprintf "reducer #%d" reducer;
      first_frame = -1;
      first_access = Report.Reducer_read;
      second_frame = -1;
      second_access = Report.Reducer_read;
      second_strand = -1;
      second_view_aware = false;
      detail = "online: reducer-reads with different peer sets";
    };
  Mutex.unlock rt.races_mu

(* SP+ determinacy rule on a (stored, current) pair: parallel, and — when
   the serially-later endpoint is view-aware — operating on views that
   are still distinct at the later endpoint ([earlier_entry_rid] is the
   earlier side's surviving region under the at-sync policy). *)
let determinacy_races (sp, s_aware) (cp, c_aware) =
  match Fp.relate sp cp with
  | Fp.Serial _ -> false
  | Fp.Parallel { a_before_b; earlier_entry_rid } ->
      let later_rid, later_aware =
        if a_before_b then (cp.Fp.p_rid, c_aware) else (sp.Fp.p_rid, s_aware)
      in
      (not later_aware) || earlier_entry_rid <> later_rid

(* Peer-Set rule (Lemma 3): two reads have the same peer set iff they
   have the same serial spawn count and neither is in a P bag relative
   to the other. SP-parallel implies P-bag membership, and a spawn-count
   mismatch is racy outright; what we drop is the remaining bag case (an
   SP-serial pair whose earlier read sits in a returned spawned subtree
   yet whose counts coincide) — an under-approximation, so no false
   positives. Both kept tests are arrival-order independent: counts by
   the connected-compare-graph argument, parallelism because detection
   order is a linear extension of the SP order (a read executes only
   after all its SP predecessors), so the first completed parallel pair
   always has one endpoint retained as the serial max. *)
let peer_races (sp, ssc) (cp, csc) =
  match Fp.relate sp cp with
  | Fp.Parallel _ -> true
  | Fp.Serial _ -> ssc <> csc

let shadow_read rt loc pt aware =
  with_slot rt.dshadow loc
    ~fresh:(fun () -> { w = None; rmin = None; rmax = None })
    (fun s ->
      (match s.w with
      | Some wr when determinacy_races wr (pt, aware) -> report_determinacy rt loc
      | _ -> ());
      (match s.rmin with
      | None -> s.rmin <- Some (pt, aware)
      | Some (m, _) ->
          if Fp.serial_before pt m then s.rmin <- Some (pt, aware));
      match s.rmax with
      | None -> s.rmax <- Some (pt, aware)
      | Some (m, _) -> if Fp.serial_before m pt then s.rmax <- Some (pt, aware))

let shadow_write rt loc pt aware =
  with_slot rt.dshadow loc
    ~fresh:(fun () -> { w = None; rmin = None; rmax = None })
    (fun s ->
      let cur = (pt, aware) in
      let races = function
        | Some stored when determinacy_races stored cur -> true
        | _ -> false
      in
      if races s.w || races s.rmin || races s.rmax then report_determinacy rt loc;
      match s.w with
      | None -> s.w <- Some cur
      | Some (wp, _) -> if Fp.serial_before wp pt then s.w <- Some cur)

let peer_read rt reducer pt sc =
  with_slot rt.pshadow reducer
    ~fresh:(fun () -> { pmin = None; pmax = None })
    (fun s ->
      let cur = (pt, sc) in
      let races = function
        | Some sp when peer_races sp cur -> true
        | _ -> false
      in
      if races s.pmin || races s.pmax then report_view_read rt reducer;
      (match s.pmin with
      | None -> s.pmin <- Some cur
      | Some (m, _) -> if Fp.serial_before pt m then s.pmin <- Some cur);
      match s.pmax with
      | None -> s.pmax <- Some cur
      | Some (m, _) -> if Fp.serial_before m pt then s.pmax <- Some cur)

(* ---------- effects ---------- *)

type _ Effect.t +=
  | Spawned : (unit -> unit) -> unit Effect.t
        (* publish my continuation as a stealable task, then run the
           child (child-first discipline) *)
  | Park : ofr -> unit Effect.t
        (* suspend until the frame's last outstanding child returns *)

(* Run a fresh computation under the scheduler's handler. Continuation
   tasks are resumed bare ([Effect.Deep.continue]): deep handlers travel
   with the continuation, so their effects and exceptions still land
   here. *)
let run_comp rt (f : unit -> unit) : unit =
  Effect.Deep.match_with f ()
    {
      retc = (fun () -> ());
      exnc = (fun e -> contain rt e);
      effc =
        (fun (type b) (eff : b Effect.t) ->
          match eff with
          | Spawned child ->
              Some
                (fun (k : (b, unit) Effect.Deep.continuation) ->
                  push_my rt (fun () -> Effect.Deep.continue k ());
                  child ())
          | Park fr ->
              Some
                (fun (k : (b, unit) Effect.Deep.continuation) ->
                  Mutex.lock fr.lock;
                  if fr.outstanding = 0 then begin
                    Mutex.unlock fr.lock;
                    Effect.Deep.continue k ()
                  end
                  else begin
                    fr.parked <- Some (fun () -> Effect.Deep.continue k ());
                    Mutex.unlock fr.lock;
                    Atomic.incr rt.n_parks;
                    if Obs.enabled () then Obs.bump_online_park ()
                  end)
          | _ -> None);
    }

let child_done rt parent =
  Mutex.lock parent.lock;
  parent.outstanding <- parent.outstanding - 1;
  let resume =
    if parent.outstanding = 0 then (
      let p = parent.parked in
      parent.parked <- None;
      p)
    else None
  in
  Mutex.unlock parent.lock;
  match resume with Some tk -> push_my rt tk | None -> ()

(* ---------- region merging (at-sync policy) ---------- *)

(* Fold the steal-opened regions back into the frame's entry region,
   newest first — the same merge order as the serial engine's repeated
   [merge_top_two] at a sync. Runs on the frame's executor after every
   child has joined, so the regions involved have no other owner. *)
let merge_regions rt ctx fr =
  let do_merge ~from ~into =
    fr.region <- into;
    let closures =
      Mutex.lock rt.merges_mu;
      let l = Dynarr.to_list rt.merges in
      Mutex.unlock rt.merges_mu;
      l
    in
    List.iter
      (fun merge -> merge ctx ~from_region:from.orid ~into_region:into.orid)
      closures;
    Hashtbl.reset from.oviews
  in
  let rec go = function
    | [] -> ()
    | [ r1 ] -> do_merge ~from:r1 ~into:fr.base
    | r1 :: (r2 :: _ as rest) ->
        do_merge ~from:r1 ~into:r2;
        go rest
  in
  go fr.opens;
  fr.opens <- [];
  fr.region <- fr.base

let frame_sync rt ctx fr =
  bump rt;
  Mutex.lock fr.lock;
  let pending = fr.outstanding > 0 in
  Mutex.unlock fr.lock;
  if pending then Effect.perform (Park fr);
  merge_regions rt ctx fr;
  fr.block <- fr.block + 1;
  fr.ls <- 0

(* ---------- DSL operations ---------- *)

let user_ctx rt fr = Engine.online_ctx rt.eng (Obj.repr { fr; aux_kind = Tool.User_fn })

let require_user o what =
  if o.aux_kind <> Tool.User_fn then
    err "%s is not allowed inside view-aware (update/reduce/identity) code" what

(* Run [f] as a child User_fn frame of [child], including the implicit
   sync, fill its future, then run [after] (join bookkeeping for stolen
   children, nothing for inline ones). *)
let child_main rt child fut f ~after =
  bump rt;
  let cctx = user_ctx rt child in
  let v = f cctx in
  frame_sync rt cctx child;
  Engine.online_future_fill fut v;
  after ()

let spawn_impl : type a. rt -> Engine.ctx -> (Engine.ctx -> a) -> a Engine.future =
 fun rt ctx f ->
  let o = ost_of ctx in
  require_user o "spawn";
  let fr = o.fr in
  bump rt;
  let ord = fr.nuser in
  fr.nuser <- ord + 1;
  let sord = fr.nspawns in
  fr.nspawns <- sord + 1;
  fr.ls <- fr.ls + 1;
  let seq = fr.seq in
  fr.seq <- seq + 1;
  let entry_region = fr.region in
  let cum_entry = fr.cum_entry + fr.nspawns in
  (* A spawned child's entry count includes its own spawn (Peer-Set's
     [anc] is read after the parent's [ls] bump). *)
  let sc_entry = fr.sc_entry + fr.ls in
  let rs =
    Fp.child fr.rs ~ord ~spawned:true ~block:fr.block ~seq
      ~rid_entry:entry_region.orid ~cum_entry
  in
  let child =
    mk_frame rt ~rs ~cum_entry ~sc_entry ~region:entry_region
      ~rpath:(ord :: fr.rpath)
      ~phash:(child_phash fr.phash ord)
  in
  let fut = Engine.online_future_make ~owner:fr.fid ~born_block:fr.block in
  if steal_decision rt fr sord then begin
    Mutex.lock rt.trace_mu;
    Dynarr.push rt.trace
      { Steal_trace.e_path = List.rev fr.rpath; e_ord = sord };
    Mutex.unlock rt.trace_mu;
    Atomic.incr rt.n_struct;
    Mutex.lock fr.lock;
    fr.outstanding <- fr.outstanding + 1;
    Mutex.unlock fr.lock;
    (* The continuation resumes in a fresh region, exactly as if stolen:
       switch the frame's region before publishing the continuation. *)
    let nr = fresh_region rt in
    fr.opens <- nr :: fr.opens;
    fr.region <- nr;
    Effect.perform
      (Spawned
         (fun () ->
           run_comp rt (fun () ->
               child_main rt child fut f ~after:(fun () -> child_done rt fr))))
  end
  else
    (* Not stolen: the child runs to completion on this worker before the
       continuation — its parks suspend the whole serial chain, which is
       the continuation's serial position anyway. *)
    child_main rt child fut f ~after:(fun () -> ());
  fut

let call_impl : type a. rt -> Engine.ctx -> (Engine.ctx -> a) -> a =
 fun rt ctx f ->
  let o = ost_of ctx in
  require_user o "call";
  let fr = o.fr in
  bump rt;
  let ord = fr.nuser in
  fr.nuser <- ord + 1;
  let seq = fr.seq in
  fr.seq <- seq + 1;
  let cum_entry = fr.cum_entry + fr.nspawns in
  let sc_entry = fr.sc_entry + fr.ls in
  let rs =
    Fp.child fr.rs ~ord ~spawned:false ~block:fr.block ~seq
      ~rid_entry:fr.region.orid ~cum_entry
  in
  let child =
    mk_frame rt ~rs ~cum_entry ~sc_entry ~region:fr.region
      ~rpath:(ord :: fr.rpath)
      ~phash:(child_phash fr.phash ord)
  in
  bump rt;
  let cctx = user_ctx rt child in
  let v = f cctx in
  frame_sync rt cctx child;
  v

let get_impl : type a. rt -> Engine.ctx -> a Engine.future -> a =
 fun _rt ctx fut ->
  let o = ost_of ctx in
  if o.fr.fid <> Engine.future_owner fut then
    err "future read from a frame other than the spawning one";
  if o.fr.block <= Engine.future_born_block fut then
    err "future read before sync (the spawned child may still be running)";
  match Engine.online_future_peek fut with
  | Some v -> v
  | None -> err "future has no value"

let sync_impl rt ctx =
  let o = ost_of ctx in
  require_user o "sync";
  frame_sync rt ctx o.fr

let run_aux_impl : type a.
    rt -> reducer:int -> Engine.ctx -> Tool.frame_kind -> (Engine.ctx -> a) -> a
    =
 fun rt ~reducer:_ ctx kind f ->
  let o = ost_of ctx in
  bump rt;
  f (Engine.online_ctx rt.eng (Obj.repr { fr = o.fr; aux_kind = kind }))

let emit_read_impl rt ctx loc =
  let o = ost_of ctx in
  bump rt;
  match o.aux_kind with
  | Tool.Reduce_fn -> ()
  | k -> shadow_read rt loc (point_of o) (k <> Tool.User_fn)

let emit_write_impl rt ctx loc =
  let o = ost_of ctx in
  bump rt;
  match o.aux_kind with
  | Tool.Reduce_fn -> ()
  | k -> shadow_write rt loc (point_of o) (k <> Tool.User_fn)

let emit_reducer_read_impl rt ctx red =
  let o = ost_of ctx in
  bump rt;
  if o.aux_kind = Tool.User_fn then
    peer_read rt red (point_of o) (o.fr.sc_entry + o.fr.ls)

let register_reducer_impl rt ~merge =
  Mutex.lock rt.merges_mu;
  let id = Dynarr.length rt.merges in
  Dynarr.push rt.merges merge;
  Mutex.unlock rt.merges_mu;
  id

let alloc_locs_impl rt ~label n =
  Mutex.lock rt.alloc_mu;
  let base = Engine.raw_alloc_locs rt.eng ~label n in
  Mutex.unlock rt.alloc_mu;
  base

(* Resolve a region id against the frame's reachable regions: its current
   region, its entry region, and its steal-opened regions. Merge closures
   only ever name regions of the frame performing the sync, and ordinary
   reducer operations name the current region, so this never needs a
   global table. *)
let region_lookup (o : ost) rid =
  let fr = o.fr in
  if fr.region.orid = rid then fr.region
  else if fr.base.orid = rid then fr.base
  else
    match List.find_opt (fun r -> r.orid = rid) fr.opens with
    | Some r -> r
    | None -> err "view region %d is not reachable from the current frame" rid

(* ---------- worker loop ---------- *)

let exec rt task =
  Atomic.incr rt.n_tasks;
  if Obs.enabled () then Obs.bump_online_task ();
  task ()

let stopped rt = Atomic.get rt.finished || Atomic.get rt.cancel

let worker rt w first =
  Domain.DLS.set wid_key w;
  (match first with Some tk -> exec rt tk | None -> ());
  (* Victim choice only affects placement, never the verdict. *)
  let rng = Rader_support.Rng.create (rt.cfg.seed + (w * 7919) + 1) in
  let p = Array.length rt.deques in
  while not (stopped rt) do
    match Ws_deque.pop rt.deques.(w) with
    | Some tk -> exec rt tk
    | None ->
        if p > 1 then begin
          let v = (w + 1 + Rader_support.Rng.int rng (p - 1)) mod p in
          match Ws_deque.steal rt.deques.(v) with
          | Some tk ->
              Atomic.incr rt.n_deque_steals;
              if Obs.enabled () then Obs.bump_online_deque_steal ();
              exec rt tk
          | None -> Domain.cpu_relax ()
        end
        else Domain.cpu_relax ()
  done

(* ---------- entry point ---------- *)

let race_summary races =
  let subjects kind =
    List.filter_map
      (fun r -> if r.Report.kind = kind then Some r.Report.subject else None)
      races
    |> List.sort_uniq compare |> List.map string_of_int |> String.concat ";"
  in
  Printf.sprintf "determinacy=[%s] view-read=[%s]"
    (subjects Report.Determinacy_race)
    (subjects Report.View_read_race)

let run cfg program =
  if cfg.workers < 1 then invalid_arg "Online.run: workers must be >= 1";
  if not (cfg.density >= 0. && cfg.density <= 1.) then
    invalid_arg "Online.run: density must be in [0, 1]";
  if cfg.reach <> Rader_reach.Reach.Depa then
    invalid_arg
      "Online.run: the dset backend is serially anchored (replay-only); \
       online detection requires --reach depa";
  let eng = Engine.create () in
  let rt =
    {
      eng;
      cfg;
      clock = (match cfg.clock with Some c -> c | None -> Unix.gettimeofday);
      deques = Array.init cfg.workers (fun _ -> Ws_deque.create ());
      finished = Atomic.make false;
      cancel = Atomic.make false;
      fail_mu = Mutex.create ();
      failure = None;
      result = Atomic.make None;
      events = Atomic.make 0;
      next_fid = Atomic.make 0;
      next_rid = Atomic.make 0;
      merges_mu = Mutex.create ();
      merges = Dynarr.create ();
      alloc_mu = Mutex.create ();
      dshadow = stripes ();
      pshadow = stripes ();
      races_mu = Mutex.create ();
      races = Report.collector ();
      trace_mu = Mutex.create ();
      trace = Dynarr.create ();
      n_struct = Atomic.make 0;
      n_tasks = Atomic.make 0;
      n_deque_steals = Atomic.make 0;
      n_parks = Atomic.make 0;
    }
  in
  Engine.set_online eng
    {
      Engine.oo_spawn = (fun ctx f -> spawn_impl rt ctx f);
      oo_get = (fun ctx fut -> get_impl rt ctx fut);
      oo_sync = (fun ctx -> sync_impl rt ctx);
      oo_call = (fun ctx f -> call_impl rt ctx f);
      oo_run_aux = (fun ~reducer ctx kind f -> run_aux_impl rt ~reducer ctx kind f);
      oo_emit_read = (fun ctx loc -> emit_read_impl rt ctx loc);
      oo_emit_write = (fun ctx loc -> emit_write_impl rt ctx loc);
      oo_emit_reducer_read = (fun ctx red -> emit_reducer_read_impl rt ctx red);
      oo_register_reducer = (fun ~merge -> register_reducer_impl rt ~merge);
      oo_alloc_locs = (fun ~label n -> alloc_locs_impl rt ~label n);
      oo_current_region = (fun ctx -> (ost_of ctx).fr.region.orid);
      oo_current_frame = (fun ctx -> (ost_of ctx).fr.fid);
      oo_view_find =
        (fun ctx ~region ~reducer ->
          let o = ost_of ctx in
          let r = region_lookup o region in
          Hashtbl.find_opt r.oviews reducer);
      oo_view_set =
        (fun ctx ~region ~reducer v ->
          let o = ost_of ctx in
          let r = region_lookup o region in
          Hashtbl.replace r.oviews reducer v);
    };
  let base = fresh_region rt in
  let root =
    mk_frame rt ~rs:(Fp.root ()) ~cum_entry:0 ~sc_entry:0 ~region:base
      ~rpath:[] ~phash:0
  in
  let root_task () =
    run_comp rt (fun () ->
        let ctx = user_ctx rt root in
        let v = program ctx in
        frame_sync rt ctx root;
        Atomic.set rt.result (Some v);
        Atomic.set rt.finished true)
  in
  let obs_on = Obs.enabled () in
  let merged = if obs_on then Some (Obs.zero ()) else None in
  let merge_mu = Mutex.create () in
  let body w first () =
    let snap = if obs_on then Some (Obs.snapshot ()) else None in
    worker rt w first;
    match (snap, merged) with
    | Some snap, Some into ->
        let delta = Obs.since snap in
        Mutex.lock merge_mu;
        Obs.add ~into delta;
        Mutex.unlock merge_mu
    | _ -> ()
  in
  let others =
    Array.init (cfg.workers - 1) (fun i ->
        Domain.spawn (fun () -> body (i + 1) None ()))
  in
  body 0 (Some root_task) ();
  Array.iter Domain.join others;
  Engine.clear_online eng;
  let value =
    match rt.failure with
    | Some f -> Error f
    | None -> (
        match Atomic.get rt.result with
        | Some v -> Ok v
        | None ->
            Error
              (Fault.Engine_invariant
                 {
                   what = "online run finished without a result";
                   origin = origin_of rt;
                 }))
  in
  let races =
    List.sort
      (fun a b ->
        match compare a.Report.kind b.Report.kind with
        | 0 -> compare a.Report.subject b.Report.subject
        | c -> c)
      (Report.races rt.races)
  in
  {
    value;
    races;
    trace =
      Steal_trace.make ~workers:cfg.workers ~seed:cfg.seed ~density:cfg.density
        (Dynarr.to_list rt.trace);
    n_structural_steals = Atomic.get rt.n_struct;
    n_tasks = Atomic.get rt.n_tasks;
    n_deque_steals = Atomic.get rt.n_deque_steals;
    n_parks = Atomic.get rt.n_parks;
    events = Atomic.get rt.events;
    counters = merged;
  }
