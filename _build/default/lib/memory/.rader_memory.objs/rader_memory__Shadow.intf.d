lib/memory/shadow.mli:
