(* Tests for trace extraction, serialization round-trips, and offline
   oracle equivalence. *)

open Rader_runtime
open Rader_core

let checkb = Alcotest.(check bool)

let fig1_like ctx =
  let list = Mylist.empty ctx in
  Mylist.insert ctx list 1;
  Mylist.insert ctx list 2;
  let copy = Mylist.shallow_copy ctx list in
  let len = Cilk.spawn ctx (fun ctx -> Mylist.scan ctx list) in
  Cilk.call ctx (fun ctx ->
      let red = Reducer.create ctx (Mylist.monoid ()) ~init:(Mylist.empty ctx) in
      Reducer.set_value ctx red copy;
      Cilk.parallel_for ctx ~lo:0 ~hi:5 (fun ctx i ->
          Reducer.update ctx red (fun c l ->
              Mylist.insert c l i;
              l));
      Cilk.sync ctx);
  Cilk.sync ctx;
  Cilk.get ctx len

let recorded ?(spec = Steal_spec.at_local_indices [ 1; 2 ]) program =
  let eng = Engine.create ~spec ~record:true () in
  ignore (Engine.run eng program);
  eng

let test_of_engine_requires_recording () =
  let eng = Engine.create () in
  ignore (Engine.run eng (fun _ -> ()));
  Alcotest.check_raises "unrecorded"
    (Invalid_argument "Trace.of_engine: engine run was not recorded") (fun () ->
      ignore (Trace.of_engine eng))

let test_trace_contents () =
  let eng = recorded fig1_like in
  let tr = Trace.of_engine eng in
  let stats = Engine.stats eng in
  Alcotest.(check int) "strands" stats.Engine.n_strands
    (Rader_dag.Dag.n_strands tr.Trace.dag);
  Alcotest.(check int) "accesses"
    (stats.Engine.n_reads + stats.Engine.n_writes)
    (List.length tr.Trace.accesses);
  Alcotest.(check int) "spawns" stats.Engine.n_spawns (List.length tr.Trace.spawns);
  checkb "labels cover accesses" true
    (List.for_all
       (fun a -> Trace.loc_label tr a.Engine.a_loc <> "?")
       tr.Trace.accesses);
  checkb "has mylist label" true
    (List.exists (fun (_, l) -> l = "mylist.next") tr.Trace.loc_labels)

let test_save_load_roundtrip () =
  let eng = recorded fig1_like in
  let tr = Trace.of_engine eng in
  let path = Filename.temp_file "rader" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.save tr path;
      let tr' = Trace.load path in
      checkb "round trip equal" true (Trace.equal tr tr'))

let test_offline_oracle_equals_online () =
  List.iter
    (fun (spec : Steal_spec.t) ->
      let eng = recorded ~spec fig1_like in
      let tr = Trace.of_engine eng in
      let path = Filename.temp_file "rader" ".trace" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Trace.save tr path;
          let tr' = Trace.load path in
          Alcotest.(check (list int))
            ("determinacy races offline (" ^ spec.Steal_spec.name ^ ")")
            (Oracle.determinacy_races eng)
            (Oracle.determinacy_races_t tr');
          Alcotest.(check (list int))
            ("view-read races offline (" ^ spec.Steal_spec.name ^ ")")
            (Oracle.view_read_races eng)
            (Oracle.view_read_races_t tr')))
    [ Steal_spec.none; Steal_spec.all (); Steal_spec.at_local_indices [ 1; 2 ] ]

let test_load_rejects_garbage () =
  let path = Filename.temp_file "rader" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "not a trace\n";
      close_out oc;
      match Trace.load path with
      | _ -> Alcotest.fail "expected failure"
      | exception Failure _ -> ())

let test_label_with_spaces_roundtrip () =
  let eng = Engine.create ~record:true () in
  ignore
    (Engine.run eng (fun ctx ->
         let c = Cell.make_in ctx ~label:"a label with spaces" 0 in
         Cell.write ctx c 1));
  let tr = Trace.of_engine eng in
  let path = Filename.temp_file "rader" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.save tr path;
      let tr' = Trace.load path in
      checkb "spacey label survives" true
        (List.exists (fun (_, l) -> l = "a label with spaces") tr'.Trace.loc_labels))

let test_sp_tree_reconstruction () =
  let eng = recorded ~spec:Steal_spec.none fig1_like in
  let tr = Trace.of_engine eng in
  let tree = Trace.sp_tree tr in
  let n = Rader_dag.Dag.n_strands tr.Trace.dag in
  Alcotest.(check (list int))
    "leaves = all strands" (List.init n Fun.id)
    (List.sort compare (Rader_dag.Sp_tree.leaves tree));
  (* spot-check: the probe child's strands are parallel to the helper's *)
  let ix = Rader_dag.Sp_tree.index tree in
  let reach = Rader_dag.Reach.compute tr.Trace.dag in
  let ok = ref true in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Rader_dag.Sp_tree.parallel ix u v <> Rader_dag.Reach.parallel reach u v then
        ok := false
    done
  done;
  checkb "tree parallelism = dag parallelism" true !ok

let test_sp_tree_rejects_performance_dag () =
  let eng = recorded ~spec:(Steal_spec.all ()) fig1_like in
  let tr = Trace.of_engine eng in
  match Trace.sp_tree tr with
  | _ -> Alcotest.fail "expected rejection"
  | exception Invalid_argument _ -> ()

let () =
  Alcotest.run "trace"
    [
      ( "trace",
        [
          Alcotest.test_case "requires recording" `Quick test_of_engine_requires_recording;
          Alcotest.test_case "contents" `Quick test_trace_contents;
          Alcotest.test_case "save/load roundtrip" `Quick test_save_load_roundtrip;
          Alcotest.test_case "offline oracle = online" `Quick
            test_offline_oracle_equals_online;
          Alcotest.test_case "rejects garbage" `Quick test_load_rejects_garbage;
          Alcotest.test_case "labels with spaces" `Quick test_label_with_spaces_roundtrip;
          Alcotest.test_case "SP-tree reconstruction" `Quick test_sp_tree_reconstruction;
          Alcotest.test_case "SP-tree rejects performance dag" `Quick
            test_sp_tree_rejects_performance_dag;
        ] );
    ]
