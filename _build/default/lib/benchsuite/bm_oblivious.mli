(** View-oblivious (reducer-free) workloads used for the detector-comparison
    ablation: SP-bags, SP-order, offset-span and SP+ are all sound on these,
    so their bookkeeping costs can be compared head-to-head. *)

(** Fibonacci via spawn/sync futures — pure control flow, no shared
    memory: measures parallel-control bookkeeping (bags vs labels). *)
val fib_futures : n:int -> Bench_def.t

(** Iterated 1-D three-point stencil over instrumented arrays — disjoint
    parallel writes and overlapping parallel reads, race-free: measures
    shadow-memory traffic. *)
val stencil : seed:int -> n:int -> rounds:int -> grain:int -> Bench_def.t
