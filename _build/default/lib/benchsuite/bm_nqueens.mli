(** N-queens solution counting — the classic Cilk demo program, here with
    the solution count accumulated in a [reducer_opadd] instead of the
    traditional return-value reduction: every safe full placement updates
    the reducer from a leaf of the spawn tree. Not part of the paper's
    table (its suite has exactly 6 rows); used as an extra workload for
    tests and the CLI. *)

val bench : n:int -> spawn_depth:int -> Bench_def.t
