(** Chase–Lev work-stealing deque on OCaml 5 atomics.

    The concurrent double-ended queue at the heart of a randomized
    work-stealing runtime (Blumofe & Leiserson; Chase & Lev SPAA'05):
    exactly one domain — the {e owner} — pushes and pops at the bottom
    (LIFO, preserving the serial depth-first order locally), while any
    number of thief domains {!steal} from the top (FIFO, taking the
    shallowest — largest — piece of work). All three operations are
    lock-free; [push]/[pop] are O(1) with no atomic read-modify-write in
    the common case, and [steal] is a single CAS.

    Discipline: {!push} and {!pop} must only ever be called from the
    owning domain; {!steal} may be called from anywhere. A [steal] that
    loses its CAS race returns [None] rather than retrying — the caller's
    steal loop picks a new victim, which is what a randomized scheduler
    wants anyway. *)

type 'a t

(** [create ()] is an empty deque. [capacity] (default 32, rounded up to
    a power of two) sizes the initial ring; the buffer grows as needed. *)
val create : ?capacity:int -> unit -> 'a t

(** [push d v] appends [v] at the bottom. Owner only. *)
val push : 'a t -> 'a -> unit

(** [pop d] removes and returns the most recently pushed element, or
    [None] if the deque is empty. Owner only. *)
val pop : 'a t -> 'a option

(** [steal d] removes and returns the oldest element, or [None] if the
    deque is empty {e or} the CAS race was lost. Any domain. *)
val steal : 'a t -> 'a option

(** [size d] is a racy estimate of the current length (exact when
    quiescent). *)
val size : 'a t -> int
