lib/core/oracle.ml: Array Hashtbl List Rader_dag Rader_runtime Trace
