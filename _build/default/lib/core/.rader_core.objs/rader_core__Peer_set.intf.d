lib/core/peer_set.mli: Rader_runtime Report
