examples/coverage_demo.mli:
