(** Many-client load driver for the serve daemon.

    Spawns [clients] threads, each firing [requests_per_client] submits
    built by [make] (called with a global request index), and tallies
    every outcome. Doubles as the S8 bench workload and as the chaos
    acceptance harness: with [malformed_rate] > 0 a request is sometimes
    preceded by a hostile frame (random byte flips, truncated payloads,
    oversized length prefixes) that the server must answer with a
    structured error or a clean close — never a crash. *)

type tally = {
  mutable sent : int;
  mutable verdicts : int;  (** complete verdicts (clean or racy) *)
  mutable partials : int;
  mutable cached : int;  (** of the verdicts, served from cache *)
  mutable faults : int;  (** [Internal_fault] answers *)
  mutable sheds : int;  (** gave up after shed retries *)
  mutable rejected : int;  (** structured [Proto_error] answers *)
  mutable malformed_sent : int;
  mutable malformed_answered : int;
  mutable transport_errors : int;  (** connect/IO/desync failures *)
}

(** [answered t] counts submits that got {e some} server answer —
    the acceptance criterion is [answered t = t.sent] (with
    [transport_errors = 0]). *)
val answered : tally -> int

type result = {
  tally : tally;
  elapsed_s : float;
  checks_per_s : float;  (** answered submits per second *)
}

val run :
  ?seed:int ->
  ?malformed_rate:float ->
  ?retries:int ->
  addr:Server.addr ->
  clients:int ->
  requests_per_client:int ->
  make:(int -> Proto.submit) ->
  unit ->
  result
