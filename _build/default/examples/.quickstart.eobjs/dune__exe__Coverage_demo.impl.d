examples/coverage_demo.ml: Cell Cilk Coverage Engine List Printf Rader_core Rader_runtime Reducer Report Sp_plus
