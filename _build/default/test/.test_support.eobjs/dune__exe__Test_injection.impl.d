test/test_injection.ml: Alcotest Cell Cilk Coverage Engine List Peer_set Rader_benchsuite Rader_core Rader_runtime Reducer Report Rmonoid Sp_bags Sp_order Sp_plus
