(** The dag model of dynamic multithreading (paper §3).

    A Cilk computation is a dag [A = (V, E)] whose vertices are {e strands}
    — maximal instruction sequences with no parallel control — and whose
    edges are parallel control dependencies. Strand ids are assigned in
    {e serial execution order} (the depth-first traversal that visits a
    spawned child before its continuation), so the id order is a topological
    order of the dag; [add_edge] enforces this.

    The same structure represents both the {e user dag} (no reduce strands)
    and the {e performance dag} of §5, which adds reduce strands and the
    reduce-tree dependencies in front of each sync strand. *)

type strand_kind =
  | User  (** ordinary, view-oblivious user code *)
  | Update  (** view-aware: body of a reducer [Update] *)
  | Reduce  (** view-aware: a reduce strand (performance dag only) *)
  | Identity  (** view-aware: a [Create-Identity] strand *)

type strand = {
  id : int;  (** dense id, = serial execution index *)
  frame : int;  (** owning function instantiation id, -1 if none *)
  kind : strand_kind;
  view : int;  (** view/region id the strand operates on; -1 if unknown *)
  label : string;  (** human-readable tag for reports and dot output *)
}

type t

(** [create ()] is an empty dag. *)
val create : unit -> t

(** [add_strand t ~frame ~kind ~view ~label] appends a strand with the next
    id (equal to the number of strands added so far) and returns its id. *)
val add_strand : t -> frame:int -> kind:strand_kind -> view:int -> label:string -> int

(** [add_edge t u v] records the dependency [u -> v].
    @raise Invalid_argument unless [u < v] (serial order is topological)
    or if either endpoint does not exist. *)
val add_edge : t -> int -> int -> unit

(** [n_strands t] is the number of strands. *)
val n_strands : t -> int

(** [strand t i] is strand [i]'s record. *)
val strand : t -> int -> strand

(** [succs t i] are [i]'s direct successors (ascending order not
    guaranteed). *)
val succs : t -> int -> int list

(** [preds t i] are [i]'s direct predecessors. *)
val preds : t -> int -> int list

(** [is_view_aware k] is true for [Update], [Reduce] and [Identity]
    strands (paper §1: instructions executed in updating or reducing views). *)
val is_view_aware : strand_kind -> bool

(** [to_dot t] renders the dag in Graphviz format, one cluster per frame,
    strands colour-coded by view id (like paper Fig. 5). *)
val to_dot : t -> string
