test/testkit/gen_program.ml: Array Buffer Cell Cilk List Printf QCheck2 Rader_runtime Reducer
