(** The paper's [MyList] (Fig. 1): a singly linked list with head and tail
    pointers for O(1) append and concatenation, with every pointer stored in
    an instrumented {!Cell}.

    This is the canonical user-defined reducer view type: [monoid ()]
    packages {!identity}-by-[empty] and {!concat}-as-[Reduce]. The
    {!shallow_copy} operation reproduces the Figure-1 bug — the copy gets
    fresh head/tail pointers but shares the underlying nodes, so a
    view-oblivious {!scan} of the original races with the view-aware
    next-pointer write performed by a [Reduce] that appends to the copy. *)

type 'a node

type 'a t

(** [empty ctx] is a fresh empty list (cells allocated, untracked init). *)
val empty : Engine.ctx -> 'a t

(** [insert ctx l x] appends [x] (instrumented reads/writes of the tail and
    next pointers). *)
val insert : Engine.ctx -> 'a t -> 'a -> unit

(** [concat ctx l r] destructively appends [r]'s nodes to [l] and returns
    [l] — the list monoid's [Reduce]. Writes the last node's next pointer:
    the write involved in the Figure-1 determinacy race. *)
val concat : Engine.ctx -> 'a t -> 'a t -> 'a t

(** [shallow_copy ctx l] is a new list descriptor sharing [l]'s nodes (the
    buggy copy constructor of Figure 1). *)
val shallow_copy : Engine.ctx -> 'a t -> 'a t

(** [deep_copy ctx l] copies the nodes too — the correct version. *)
val deep_copy : Engine.ctx -> 'a t -> 'a t

(** [scan ctx l] walks the list via instrumented next-pointer reads until a
    null next pointer, returning the number of nodes visited — Figure 1's
    [scan_list]. *)
val scan : Engine.ctx -> 'a t -> int

(** [to_list ctx l] is the elements in order (instrumented walk). *)
val to_list : Engine.ctx -> 'a t -> 'a list

(** [peek_list l] is the elements in order, uninstrumented (post-run). *)
val peek_list : 'a t -> 'a list

(** [monoid ()] is the list reducer monoid ([identity] = [empty],
    [reduce] = [concat]). *)
val monoid : unit -> 'a t Reducer.monoid
