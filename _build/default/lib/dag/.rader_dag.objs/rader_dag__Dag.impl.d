lib/dag/dag.ml: Array Hashtbl List Printf Rader_support
