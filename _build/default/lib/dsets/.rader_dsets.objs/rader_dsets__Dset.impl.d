lib/dsets/dset.ml: Rader_support
