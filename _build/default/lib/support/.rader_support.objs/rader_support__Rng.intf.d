lib/support/rng.mli:
