lib/core/report.mli:
