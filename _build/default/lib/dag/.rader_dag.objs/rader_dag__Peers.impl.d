lib/dag/peers.ml: Array Dag Rader_support Reach
