examples/linked_list_race.ml: Cilk Engine List Mylist Printf Rader_core Rader_runtime Reducer Report Sp_bags Sp_plus Steal_spec
