lib/dag/reach.ml: Array Dag List Rader_support
