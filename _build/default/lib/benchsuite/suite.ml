let names = [ "collision"; "dedup"; "ferret"; "fib"; "knapsack"; "pbfs" ]

let all ?(seed = 20150613) ?(scale = 1.0) () =
  let s f = max 1 (int_of_float (f *. scale)) in
  let log_extra base = int_of_float (Float.round (Float.log2 (Float.max 1.0 scale))) + base in
  [
    Bm_collision.bench ~seed ~n:(s 4000.) ~world:50.0 ~cell:2.5;
    Bm_dedup.bench ~seed ~size:(s 262144.) ~block:2048;
    Bm_ferret.bench ~seed ~db:(s 512.) ~queries:(s 192.) ~dim:16 ~topk:3;
    Bm_fib.bench ~n:(log_extra 21);
    (let n_items = log_extra 24 in
     Bm_knapsack.bench ~seed ~n_items ~capacity:50 ~spawn_depth:(n_items - 8));
    Bm_pbfs.bench ~seed ~n:(s 30000.) ~m:(s 190000.) ~grain:16;
  ]

let find ?seed ?scale name =
  List.find (fun b -> b.Bench_def.name = name) (all ?seed ?scale ())
