lib/runtime/rvec.mli: Engine Reducer
