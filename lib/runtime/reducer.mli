(** Reducer hyperobjects (paper §2).

    A reducer is declared over a monoid [(T, ⊗, e)] given as an
    {!monoid} record whose operations run {e instrumented}: [identity]
    implements [Create-Identity] and [reduce] implements [Reduce], and both
    receive a context so that any memory they touch goes through {!Cell} /
    {!Rarray} and is visible to the detectors. Updates are applied through
    {!update}, which runs as a view-aware [Update] frame.

    View management follows the Cilk runtime (paper §5): each strand sees
    the view of its current region; the first update (or value access) in a
    freshly stolen region materializes an identity view via a
    [Create-Identity] frame; when the engine merges two adjacent regions,
    the reducer's dominated view is folded into the surviving one by a
    [Reduce] frame (or simply transferred when the surviving region never
    materialized a view, mirroring lazy view creation).

    {!create}, {!get_value} and {!set_value} are {e reducer-reads} in the
    sense of the Peer-Set algorithm (paper §3) and are reported to the tool
    as such; [update] is not. *)

type 'v monoid = {
  name : string;
  identity : Engine.ctx -> 'v;  (** [Create-Identity] *)
  reduce : Engine.ctx -> 'v -> 'v -> 'v;
      (** [reduce c left right] folds [right] (the dominated, serially later
          view) into [left] and returns the surviving view; it may mutate
          [left] in place. Must be semantically associative. *)
}

(** Configuration of the optional sampled monoid-contract self-check. The
    check needs to compare and duplicate views: [lc_equal] decides value
    equality, [lc_copy] produces a copy safe to mutate (the monoid's
    [reduce] may mutate its left argument), and [lc_samples] bounds how
    many region merges are checked (the identity laws are additionally
    checked once on [init] at creation). Operations run {e outside} any
    view-aware frame, on copies only — the check is invisible to the
    detectors and to live views; monoids whose operations touch
    instrumented memory should only enable it with an [lc_copy] that
    allocates fresh cells. *)
type 'v law_check = {
  lc_equal : 'v -> 'v -> bool;
  lc_copy : 'v -> 'v;
  lc_samples : int;
}

type 'v t

(** [create ctx m ~init] declares a reducer with initial (leftmost) view
    [init]. A reducer-read.

    When [self_check] is given, the monoid laws — associativity, and the
    left/right identity laws — are verified on up to [lc_samples] observed
    view pairs as region merges happen. Violations are {e reported}, not
    raised: they are recorded on the engine as
    [Fault.Monoid_contract] (see [Engine.contract_violations]) and turn
    the verdict of [Engine.run_result] into [Error]. *)
val create : Engine.ctx -> ?self_check:'v law_check -> 'v monoid -> init:'v -> 'v t

(** [get_value ctx r] is the current view's value (materializing an
    identity view if the current region has none, like Cilk's [view()]).
    A reducer-read. *)
val get_value : Engine.ctx -> 'v t -> 'v

(** [set_value ctx r v] replaces the current view's value. A
    reducer-read. *)
val set_value : Engine.ctx -> 'v t -> 'v -> unit

(** [update ctx r f] applies [f] to the current view inside an [Update]
    frame and stores the result. [f] must be serial Cilk code (no spawn /
    sync / reducer-reads) whose shared accesses go through cells. *)
val update : Engine.ctx -> 'v t -> (Engine.ctx -> 'v -> 'v) -> unit

(** [id r] is the reducer's dense id (as reported in tool events). *)
val id : 'v t -> int

(** [name r] is the monoid name. *)
val name : 'v t -> string

(** [peek r] is the value of the view living in the reducer's creation
    region, uninstrumented — for post-run verification in tests only. *)
val peek : 'v t -> 'v option

(** [n_views r] is the number of views currently materialized —
    1 after all regions of the creating sync block are merged. *)
val n_views : 'v t -> int
