(* The two Reach backends must be observationally identical: same
   Serial/Parallel classification (including the surviving view id) after
   every event of any legal event sequence, and — end to end — the same
   verdicts from SP+ and Peer-Set on generated programs under arbitrary
   steal specifications. The event sequences come from the real engine
   replaying random programs, which guarantees legality (proper nesting,
   reduces before syncs, steals after spawned returns) while still
   exercising every event type. *)

open Rader_runtime
open Rader_core
module Reach = Rader_reach.Reach
module G = Rader_testkit.Gen_program
module Dynarr = Rader_support.Dynarr

let qtest ?(count = 150) name gen prop =
  QCheck2.Test.make ~name ~count ~print:G.print gen prop

(* programs paired with a steal spec: print only the program (specs are
   reproducible from the seed embedded in the generator). *)
let qtest_spec ?(count = 150) name gen prop =
  QCheck2.Test.make ~name ~count ~print:(fun (p, _) -> G.print p) gen prop

let gen_spec =
  let open QCheck2.Gen in
  let* seed = int_bound 10_000 in
  let* density = float_bound_inclusive 1.0 in
  let* policy =
    oneof
      [
        return Steal_spec.Reduce_eagerly;
        return Steal_spec.Reduce_at_sync;
        (let* modulus = int_range 1 3 in
         let* amount = int_range 1 2 in
         return
           (Steal_spec.Reduce_schedule (fun k -> if k mod modulus = 0 then amount else 0)));
      ]
  in
  return (Steal_spec.random ~policy ~seed ~density ())

let show_cls = function
  | Reach.Sp.Serial -> "S"
  | Reach.Sp.Parallel v -> Printf.sprintf "P(%d)" v

(* Drive both Sp backends from one engine run and compare the full
   classification map (every frame seen so far, against the current
   point) after every event. *)
let mirror_run p spec =
  let a = Reach.Sp.create Reach.Dset and b = Reach.Sp.create Reach.Depa in
  let seen = Dynarr.create () in
  let depth = ref 0 in
  let failure = ref None in
  let check ev =
    if !depth > 0 && !failure = None then begin
      let va = Reach.Sp.cur_view a and vb = Reach.Sp.cur_view b in
      if va <> vb then
        failure := Some (Printf.sprintf "%s: cur_view %d vs %d" ev va vb)
      else
        Dynarr.iter
          (fun f ->
            if !failure = None then begin
              let ca = Reach.Sp.classify a f and cb = Reach.Sp.classify b f in
              if ca <> cb then
                failure :=
                  Some
                    (Printf.sprintf "%s: classify %d: %s vs %s" ev f (show_cls ca)
                       (show_cls cb))
            end)
          seen
    end
  in
  let tool =
    Tool.extern
    {
      Tool.hooks_null with
      Tool.on_frame_enter =
        (fun ~frame ~parent:_ ~spawned:_ ~kind:_ ->
          Reach.Sp.on_frame_enter a ~frame;
          Reach.Sp.on_frame_enter b ~frame;
          Dynarr.push seen frame;
          incr depth;
          check "enter");
      on_frame_return =
        (fun ~frame ~parent:_ ~spawned ~kind ->
          let parallel = kind = Tool.Reduce_fn || spawned in
          ignore (Reach.Sp.on_frame_return a ~frame ~parallel);
          ignore (Reach.Sp.on_frame_return b ~frame ~parallel);
          decr depth;
          check "return");
      on_sync =
        (fun ~frame ->
          ignore (Reach.Sp.on_sync a ~frame);
          ignore (Reach.Sp.on_sync b ~frame);
          check "sync");
      on_steal =
        (fun ~frame ~region ->
          Reach.Sp.on_steal a ~frame ~region;
          Reach.Sp.on_steal b ~frame ~region;
          check "steal");
      on_reduce =
        (fun ~frame ~into_region:_ ~from_region:_ ->
          ignore (Reach.Sp.on_reduce a ~frame);
          ignore (Reach.Sp.on_reduce b ~frame);
          check "reduce");
    }
  in
  let eng = Engine.create ~spec () in
  Engine.set_tool eng tool;
  ignore (Engine.run eng (G.interpret p));
  !failure

let prop_sp_backends_agree =
  qtest_spec ~count:250 "Reach.Sp: dset = depa after every event"
    QCheck2.Gen.(pair (G.gen ~with_reducers:true ~racy:true) gen_spec)
    (fun (p, spec) ->
      match mirror_run p spec with
      | None -> true
      | Some msg -> QCheck2.Test.fail_reportf "backends disagree: %s" msg)

(* End-to-end: SP+ verdicts (reports rendered to strings, racy loc sets)
   are byte-identical between backends, under the serial schedule and
   under generated steal specs. Together with the count below this is the
   >= 240 generated-program cross-check of the acceptance criteria. *)
let sp_plus_verdict reach p spec =
  let eng = Engine.create ~spec () in
  let d = Sp_plus.attach ~reach eng in
  ignore (Engine.run eng (G.interpret p));
  (List.map Report.to_string (Sp_plus.races d), Sp_plus.racy_locs d)

let prop_sp_plus_verdicts_identical =
  qtest_spec ~count:300 "SP+: dset and depa verdicts byte-identical"
    QCheck2.Gen.(pair (G.gen ~with_reducers:true ~racy:true) gen_spec)
    (fun (p, spec) ->
      List.for_all
        (fun spec ->
          let ra, la = sp_plus_verdict Reach.Dset p spec
          and rb, lb = sp_plus_verdict Reach.Depa p spec in
          if ra <> rb || la <> lb then
            QCheck2.Test.fail_reportf "SP+ verdicts differ:\n dset: %s\n depa: %s"
              (String.concat "; " ra) (String.concat "; " rb)
          else true)
        [ Steal_spec.none; spec ])

let peer_verdict reach p =
  let eng = Engine.create () in
  let d = Peer_set.attach ~reach eng in
  ignore (Engine.run eng (G.interpret p));
  List.map Report.to_string (Peer_set.races d)

let prop_peer_verdicts_identical =
  qtest ~count:300 "Peer-Set: dset and depa verdicts byte-identical"
    (G.gen ~with_reducers:true ~racy:true)
    (fun p ->
      let ra = peer_verdict Reach.Dset p and rb = peer_verdict Reach.Depa p in
      if ra <> rb then
        QCheck2.Test.fail_reportf "Peer-Set verdicts differ:\n dset: %s\n depa: %s"
          (String.concat "; " ra) (String.concat "; " rb)
      else true)

(* SP-order's optional Reach oracle (both backends, queried at frame
   granularity) must reproduce the English/Hebrew label verdicts
   exactly — on reducer-free programs, where SP-order is sound. *)
let sp_order_verdict reach p spec =
  let eng = Engine.create ~spec () in
  let d = Sp_order.attach ?reach eng in
  ignore (Engine.run eng (G.interpret p));
  List.map Report.to_string (Sp_order.races d)

let prop_sp_order_oracles_identical =
  qtest_spec ~count:200 "SP-order: label and Reach oracles agree"
    QCheck2.Gen.(pair (G.gen ~with_reducers:false ~racy:true) gen_spec)
    (fun (p, spec) ->
      List.for_all
        (fun spec ->
          let reference = sp_order_verdict None p spec in
          List.for_all
            (fun reach ->
              let got = sp_order_verdict (Some reach) p spec in
              if got <> reference then
                QCheck2.Test.fail_reportf
                  "SP-order verdicts differ under %s:\n labels: %s\n reach: %s"
                  (Reach.show reach)
                  (String.concat "; " reference)
                  (String.concat "; " got)
              else true)
            Reach.all)
        [ Steal_spec.none; spec ])

(* Detector reset must restore both backends to a pristine state: a
   reset replay yields the same verdicts as a fresh detector. *)
let prop_reset_equals_fresh =
  qtest_spec ~count:100 "Sp_plus reset = fresh (both backends)"
    QCheck2.Gen.(pair (G.gen ~with_reducers:true ~racy:true) gen_spec)
    (fun (p, spec) ->
      List.for_all
        (fun reach ->
          let eng = Engine.create ~spec () in
          let d = Sp_plus.attach ~reach eng in
          ignore (Engine.run eng (G.interpret p));
          let first = List.map Report.to_string (Sp_plus.races d) in
          Engine.reset ~spec eng;
          Sp_plus.reset d;
          ignore (Engine.run eng (G.interpret p));
          let second = List.map Report.to_string (Sp_plus.races d) in
          first = second)
        [ Reach.Dset; Reach.Depa ])

let parse_tests () =
  Alcotest.(check (list string))
    "round trip" [ "dset"; "depa" ]
    (List.map Reach.show Reach.all);
  (match Reach.parse "depa" with
  | Ok Reach.Depa -> ()
  | _ -> Alcotest.fail "parse depa");
  (match Reach.parse "dset" with
  | Ok Reach.Dset -> ()
  | _ -> Alcotest.fail "parse dset");
  match Reach.parse "nope" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "parse nope should fail"

let () =
  let props =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_sp_backends_agree;
        prop_sp_plus_verdicts_identical;
        prop_peer_verdicts_identical;
        prop_sp_order_oracles_identical;
        prop_reset_equals_fresh;
      ]
  in
  Alcotest.run "reach"
    [
      ("backend-agreement", props);
      ("backend-enum", [ Alcotest.test_case "parse/show" `Quick parse_tests ]);
    ]
