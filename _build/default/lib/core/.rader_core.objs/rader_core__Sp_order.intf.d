lib/core/sp_order.mli: Rader_runtime Report
