(** Peer sets (paper §3).

    The peers of a strand [u] are [peers(u) = { w ∈ V : w ‖ u }]. Peer-set
    semantics guarantee that the view of a reducer observed at [v] reflects
    the updates since [u] iff [peers(u) = peers(v)] (Definition 1); the
    Peer-Set algorithm detects reducer-reads whose peer sets differ. This
    module computes peer sets explicitly — the testing oracle. *)

type t

(** [compute dag] precomputes everything needed for peer queries. *)
val compute : Dag.t -> t

(** [peers t u] is the peer bitset of [u] (do not mutate). *)
val peers : t -> int -> Rader_support.Bitset.t

(** [equal_peers t u v] is [peers(u) = peers(v)]. *)
val equal_peers : t -> int -> int -> bool

(** [n_peers t u] is [|peers(u)|]. *)
val n_peers : t -> int -> int
