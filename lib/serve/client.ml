(* Client side of the serve protocol: one synchronous request per call,
   with capped exponential backoff plus jitter on Retry_after sheds. *)

module Rng = Rader_support.Rng

type t = {
  fd : Unix.file_descr;
  mutable next_id : int;
  rng : Rng.t;  (* backoff jitter *)
}

let connect addr =
  let domain, sockaddr =
    match addr with
    | Server.Unix_path p -> (Unix.PF_UNIX, Unix.ADDR_UNIX p)
    | Server.Tcp (host, port) ->
        let ip =
          if host = "" || host = "localhost" then Unix.inet_addr_loopback
          else Unix.inet_addr_of_string host
        in
        (Unix.PF_INET, Unix.ADDR_INET (ip, port))
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  match Unix.connect fd sockaddr with
  | () -> Ok { fd; next_id = 1; rng = Rng.create 0x5eed }
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
      Error
        (Printf.sprintf "cannot connect to %s: %s"
           (Server.addr_to_string addr) (Unix.error_message e))

let close t = try Unix.close t.fd with Unix.Unix_error (_, _, _) -> ()
let fd t = t.fd

(* One request/response round trip. Responses are matched by id; a
   mismatch means the stream is desynchronized and is an error. *)
let roundtrip t req =
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  match
    Proto.send t.fd (Proto.encode_request ~id req);
    Proto.recv t.fd
  with
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "connection error: %s" (Unix.error_message e))
  | Error `Eof -> Error "server closed the connection"
  | Error (`Err e) ->
      Error (Printf.sprintf "framing error %d: %s" e.Proto.code e.Proto.msg)
  | Ok body -> (
      match Proto.decode_response body with
      | Error e ->
          Error
            (Printf.sprintf "undecodable response %d: %s" e.Proto.code
               e.Proto.msg)
      | Ok (rid, resp) ->
          if rid <> id && rid <> 0 then
            Error (Printf.sprintf "response id %d for request %d" rid id)
          else Ok resp)

(* Capped exponential backoff with full jitter: sleep uniform in
   [0, min(cap, base * 2^attempt)]. *)
let backoff_s t ~base_ms ~cap_ms ~attempt =
  let ceiling =
    min (float_of_int cap_ms)
      (float_of_int base_ms *. (2.0 ** float_of_int attempt))
  in
  Rng.float t.rng (ceiling /. 1000.0)

type outcome =
  | Verdict of Proto.verdict
  | Fault of string  (** server answered [Internal_fault] *)
  | Rejected of Proto.err  (** server answered [Proto_error] *)
  | Shed  (** still [Retry_after] once retries were exhausted *)

let submit ?(retries = 5) ?(base_ms = 25) ?(cap_ms = 1000) t sub =
  let rec go attempt =
    match roundtrip t (Proto.Submit sub) with
    | Error _ as e -> e
    | Ok (Proto.Verdict v) -> Ok (Verdict v)
    | Ok (Proto.Internal_fault msg) -> Ok (Fault msg)
    | Ok (Proto.Proto_error e) -> Ok (Rejected e)
    | Ok (Proto.Retry_after ms) ->
        if attempt >= retries then Ok Shed
        else begin
          Thread.delay
            (max (float_of_int ms /. 1000.0)
               (backoff_s t ~base_ms ~cap_ms ~attempt));
          go (attempt + 1)
        end
    | Ok (Proto.Health_report _ | Proto.Bye) ->
        Error "protocol confusion: non-verdict response to Submit"
  in
  go 0

let health t =
  match roundtrip t Proto.Health with
  | Error _ as e -> e
  | Ok (Proto.Health_report json) -> Ok json
  | Ok _ -> Error "protocol confusion: non-health response to Health"

let shutdown t =
  match roundtrip t Proto.Shutdown with
  | Error _ as e -> e
  | Ok Proto.Bye -> Ok ()
  | Ok _ -> Error "protocol confusion: non-Bye response to Shutdown"
