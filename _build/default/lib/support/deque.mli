(** Double-ended queue over a growable ring buffer.

    Used as the work deque in the work-stealing simulator: the owner pushes
    and pops at the {e bottom} (LIFO), thieves take from the {e top}
    (FIFO), the classic THE/Chase-Lev discipline — here without the
    concurrency, since the simulator is a discrete-event model. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

(** [push_bottom t x] adds [x] at the owner's end. *)
val push_bottom : 'a t -> 'a -> unit

(** [pop_bottom t] removes the most recently pushed element.
    @raise Invalid_argument if empty. *)
val pop_bottom : 'a t -> 'a

(** [steal_top t] removes the oldest element.
    @raise Invalid_argument if empty. *)
val steal_top : 'a t -> 'a

val clear : 'a t -> unit
