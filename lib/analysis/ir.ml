open Rader_runtime

type t = {
  trace : Rader_core.Trace.t;
  tree : Rader_dag.Sp_tree.t;
  ix : Rader_dag.Sp_tree.indexed;
  result : int;
  aux : (Tool.frame_kind * int * int) list;
  reads_by_reducer : (int, int list) Hashtbl.t;
  updates_by_reducer : (int, int list) Hashtbl.t;
  n_reducers : int;
}

(* Group an association list into per-key lists, preserving the serial
   order of the values within each key. *)
let group pairs =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (k, v) ->
      let prev = try Hashtbl.find tbl k with Not_found -> [] in
      Hashtbl.replace tbl k (v :: prev))
    pairs;
  let out = Hashtbl.create (Hashtbl.length tbl) in
  Hashtbl.iter (fun k vs -> Hashtbl.replace out k (List.rev vs)) tbl;
  out

let of_program ?max_events (program : Engine.ctx -> int) =
  let eng = Engine.create ~record:true ?max_events () in
  match Engine.run_result eng program with
  | Error f -> Error f
  | Ok result ->
      let trace = Rader_core.Trace.of_engine eng in
      let tree = Rader_core.Trace.sp_tree trace in
      let ix = Rader_dag.Sp_tree.index tree in
      let aux = Engine.aux_frames eng in
      let reads_by_reducer = group trace.Rader_core.Trace.reducer_reads in
      let updates_by_reducer =
        group
          (List.filter_map
             (fun (kind, reducer, strand) ->
               if kind = Tool.Update_fn && reducer >= 0 then
                 Some (reducer, strand)
               else None)
             aux)
      in
      (* every reducer's creation emits a reducer-read, so the read log
         covers all ids *)
      let n_reducers =
        List.fold_left
          (fun m (rid, _) -> max m (rid + 1))
          0
          trace.Rader_core.Trace.reducer_reads
      in
      Ok
        {
          trace;
          tree;
          ix;
          result;
          aux;
          reads_by_reducer;
          updates_by_reducer;
          n_reducers;
        }

let reducer_ids ir =
  List.sort compare
    (Hashtbl.fold (fun k _ acc -> k :: acc) ir.reads_by_reducer [])

let reads ir rid =
  try Hashtbl.find ir.reads_by_reducer rid with Not_found -> []

let updates ir rid =
  try Hashtbl.find ir.updates_by_reducer rid with Not_found -> []

let loc_label ir loc = Rader_core.Trace.loc_label ir.trace loc
let accesses ir = ir.trace.Rader_core.Trace.accesses
