lib/runtime/cell.mli: Engine
