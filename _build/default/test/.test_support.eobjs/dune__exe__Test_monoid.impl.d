test/test_monoid.ml: Alcotest Float List QCheck2 QCheck_alcotest Rader_monoid
