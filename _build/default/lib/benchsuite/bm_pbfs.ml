open Rader_runtime
module Monoids = Rader_monoid.Monoids

let src = 0

let checksum_dist dist =
  Array.fold_left Bench_def.fnv_int Bench_def.(fnv_string "pbfs") dist

let plain (g : Workloads.graph) =
  let dist = Array.make g.Workloads.n (-1) in
  dist.(src) <- 0;
  let frontier = ref [ src ] in
  let d = ref 0 in
  while !frontier <> [] do
    incr d;
    let next = ref [] in
    List.iter
      (fun u ->
        for k = g.Workloads.row.(u) to g.Workloads.row.(u + 1) - 1 do
          let w = g.Workloads.col.(k) in
          if dist.(w) < 0 then begin
            dist.(w) <- !d;
            next := w :: !next
          end
        done)
      !frontier;
    frontier := !next
  done;
  checksum_dist dist

let cilk (g : Workloads.graph) grain ctx =
  let eng = Engine.engine ctx in
  let n = g.Workloads.n in
  let bag_monoid = Monoids.bag () in
  let dist = Rarray.make eng ~label:"pbfs.dist" n (-1) in
  Rarray.write ctx dist src 0;
  let frontier = ref [| src |] in
  let d = ref 0 in
  while Array.length !frontier > 0 do
    incr d;
    let layer = !frontier in
    let depth = !d in
    let bag =
      Reducer.create ctx (Rmonoid.of_pure bag_monoid)
        ~init:(bag_monoid.Rader_monoid.Monoid.identity ())
    in
    Cilk.parallel_for ~grain ctx ~lo:0 ~hi:(Array.length layer) (fun ctx i ->
        let u = layer.(i) in
        for k = g.Workloads.row.(u) to g.Workloads.row.(u + 1) - 1 do
          let w = g.Workloads.col.(k) in
          (* Reads race with nothing: distances are only written serially
             between layers. *)
          if Rarray.read ctx dist w < 0 then
            Reducer.update ctx bag (fun _ b ->
                bag_monoid.Rader_monoid.Monoid.combine b (Monoids.bag_singleton w))
        done);
    Cilk.sync ctx;
    let candidates = Monoids.bag_elements (Reducer.get_value ctx bag) in
    let next = ref [] in
    List.iter
      (fun w ->
        if Rarray.read ctx dist w < 0 then begin
          Rarray.write ctx dist w depth;
          next := w :: !next
        end)
      candidates;
    frontier := Array.of_list !next
  done;
  checksum_dist (Rarray.to_array dist)

let bench ~seed ~n ~m ~grain =
  let g = Workloads.random_graph ~seed ~n ~m in
  {
    Bench_def.name = "pbfs";
    descr = "Parallel breadth-first search";
    input = Printf.sprintf "|V|=%d |E|=%d" n m;
    plain = (fun () -> plain g);
    cilk = cilk g grain;
  }
