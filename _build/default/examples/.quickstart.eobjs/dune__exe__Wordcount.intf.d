examples/wordcount.mli:
